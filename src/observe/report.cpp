#include "observe/report.h"

#include "support/check.h"
#include "support/table.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

namespace motune::observe {

namespace {

TraceRecord::Kind kindFromName(const std::string& name) {
  if (name == "span") return TraceRecord::Kind::Span;
  if (name == "event") return TraceRecord::Kind::Event;
  if (name == "counter") return TraceRecord::Kind::Counter;
  if (name == "gauge") return TraceRecord::Kind::Gauge;
  if (name == "histogram") return TraceRecord::Kind::Histogram;
  MOTUNE_CHECK_MSG(false, "unknown record type: " + name);
  return TraceRecord::Kind::Event;
}

double attrNumber(const support::JsonObject& attrs, const std::string& key,
                  double fallback = 0.0) {
  const auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.asNumber();
}

std::int64_t attrInt(const support::JsonObject& attrs, const std::string& key,
                     std::int64_t fallback = 0) {
  const auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.asInt();
}

std::string attrString(const support::JsonObject& attrs,
                       const std::string& key, const std::string& fallback) {
  const auto it = attrs.find(key);
  return it == attrs.end() ? fallback : it->second.asString();
}

/// `|`-safe markdown cell.
std::string mdCell(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '|') out += "\\|";
    else out += c;
  }
  return out;
}

std::string mdRow(const std::vector<std::string>& cells) {
  std::string out = "|";
  for (const auto& c : cells) out += " " + mdCell(c) + " |";
  return out + "\n";
}

std::string mdHeader(const std::vector<std::string>& cells) {
  std::string out = mdRow(cells) + "|";
  for (std::size_t i = 0; i < cells.size(); ++i) out += "---|";
  return out + "\n";
}

} // namespace

std::vector<TraceRecord> parseTraceJsonl(std::istream& in) {
  std::vector<TraceRecord> records;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    support::Json json;
    try {
      json = support::Json::parse(line);
    } catch (const std::exception& e) {
      MOTUNE_CHECK_MSG(false, "trace line " + std::to_string(lineno) +
                                  ": " + e.what());
    }
    MOTUNE_CHECK_MSG(json.has("type") && json.has("name"),
                     "trace line " + std::to_string(lineno) +
                         ": missing type/name");
    TraceRecord r;
    r.kind = kindFromName(json.at("type").asString());
    r.name = json.at("name").asString();
    r.start = json.has("t") ? json.at("t").asNumber() : 0.0;
    if (json.has("tid"))
      r.tid = static_cast<std::uint32_t>(json.at("tid").asInt());
    if (json.has("id")) r.id = static_cast<std::uint64_t>(json.at("id").asInt());
    if (json.has("parent"))
      r.parent = static_cast<std::uint64_t>(json.at("parent").asInt());
    if (json.has("dur")) r.duration = json.at("dur").asNumber();
    if (json.has("attrs")) r.attrs = json.at("attrs").asObject();
    records.push_back(std::move(r));
  }
  return records;
}

std::vector<TraceRecord> parseTraceFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open trace: " + path);
  return parseTraceJsonl(in);
}

Report buildReport(const std::vector<TraceRecord>& records,
                   const ReportOptions& options) {
  Report report;
  report.records = records.size();

  // ---------------------------------------------------- span attribution
  std::unordered_map<std::uint64_t, const TraceRecord*> spanById;
  std::unordered_map<std::uint64_t, double> childSeconds;
  for (const auto& r : records)
    if (r.kind == TraceRecord::Kind::Span && r.id != 0) spanById[r.id] = &r;
  for (const auto& r : records)
    if (r.kind == TraceRecord::Kind::Span && r.parent != 0 &&
        spanById.count(r.parent))
      childSeconds[r.parent] += r.duration;

  std::map<std::string, SpanStat> byName;
  std::map<std::string, std::uint64_t> collapsed; // path -> self microseconds
  for (const auto& r : records) {
    if (r.kind != TraceRecord::Kind::Span || r.id == 0) continue;
    const auto childIt = childSeconds.find(r.id);
    const double self = std::max(
        0.0, r.duration - (childIt == childSeconds.end() ? 0.0
                                                         : childIt->second));
    SpanStat& stat = byName[r.name];
    stat.name = r.name;
    ++stat.count;
    stat.totalSeconds += r.duration;
    stat.selfSeconds += self;
    report.totalSelfSeconds += self;

    // Collapsed stack: names from root to this span (cycle-guarded).
    std::vector<const TraceRecord*> chain{&r};
    const TraceRecord* cur = &r;
    for (int depth = 0; depth < 64 && cur->parent != 0; ++depth) {
      const auto it = spanById.find(cur->parent);
      if (it == spanById.end()) break;
      cur = it->second;
      chain.push_back(cur);
    }
    std::string path;
    for (auto it = chain.rbegin(); it != chain.rend(); ++it)
      path += (path.empty() ? "" : ";") + (*it)->name;
    collapsed[path] += static_cast<std::uint64_t>(std::llround(self * 1e6));
  }
  for (const auto& [name, stat] : byName) report.hotSpans.push_back(stat);
  std::sort(report.hotSpans.begin(), report.hotSpans.end(),
            [](const SpanStat& a, const SpanStat& b) {
              return a.selfSeconds != b.selfSeconds
                         ? a.selfSeconds > b.selfSeconds
                         : a.name < b.name;
            });
  if (report.hotSpans.size() > options.topK)
    report.hotSpans.resize(options.topK);
  for (const auto& [path, micros] : collapsed)
    report.collapsedStacks += path + " " + std::to_string(micros) + "\n";

  // --------------------------------------------- everything record-driven
  for (const auto& r : records) {
    if (r.name == "trace.header") {
      report.wallEpochUnix = attrNumber(r.attrs, "wall_epoch_unix");
    } else if (r.kind == TraceRecord::Kind::Span &&
               r.name == "gde3.generation") {
      GenerationPoint p;
      p.gen = attrInt(r.attrs, "gen");
      p.bestHv = attrNumber(r.attrs, "hv");
      p.genHv = attrNumber(r.attrs, "gen_hv");
      p.frontSize = attrInt(r.attrs, "front_size");
      p.immigrants = attrInt(r.attrs, "immigrants");
      const auto it = r.attrs.find("improved");
      p.improved = it != r.attrs.end() && it->second.asBool();
      report.convergence.push_back(p);
    } else if (r.name == "autotune.front_version") {
      report.front.push_back(r.attrs);
    } else if (r.name == "eval.validate") {
      report.validations.push_back(r.attrs);
    } else if (r.kind == TraceRecord::Kind::Counter) {
      if (r.name == "tuning.evaluations.unique")
        report.uniqueEvaluations =
            static_cast<std::uint64_t>(attrInt(r.attrs, "value"));
      else if (r.name == "tuning.evaluations.memo_hits")
        report.memoHits = static_cast<std::uint64_t>(attrInt(r.attrs, "value"));
      else if (r.name == "rt.ring.dropped") {
        report.sawRingDropCounter = true;
        report.ringDrops = static_cast<std::uint64_t>(attrInt(r.attrs, "value"));
      } else if (r.name.rfind("rt.adaptive.", 0) == 0) {
        report.adaptiveCounters[r.name] =
            static_cast<std::uint64_t>(attrInt(r.attrs, "value"));
      }
    } else if (r.kind == TraceRecord::Kind::Histogram &&
               r.name == "tuning.evaluation.seconds") {
      report.evalLatency = r.attrs;
    } else if (r.kind == TraceRecord::Kind::Event &&
               r.name == "region.select") {
      ++report.selectionsByPolicy[attrString(r.attrs, "policy", "?")]
            [attrInt(r.attrs, "version")];
    }
  }
  // A daemon job's trace.jsonl accumulates runs (appended across restarts),
  // so generations can arrive out of order and a generation interrupted at
  // a checkpoint boundary can appear twice. Order by generation keeping
  // file order within ties, then keep only the last record of each
  // generation — the resumed run's version of it.
  std::stable_sort(report.convergence.begin(), report.convergence.end(),
                   [](const GenerationPoint& a, const GenerationPoint& b) {
                     return a.gen < b.gen;
                   });
  {
    std::vector<GenerationPoint> unique;
    unique.reserve(report.convergence.size());
    for (const GenerationPoint& p : report.convergence) {
      if (!unique.empty() && unique.back().gen == p.gen)
        unique.back() = p;
      else
        unique.push_back(p);
    }
    report.convergence = std::move(unique);
  }

  // ------------------------------------------------------ runtime threads
  std::map<std::uint32_t, ThreadActivity> threads;
  std::map<std::uint32_t, double> taskSeconds, chunkSeconds;
  for (const auto& r : records) {
    if (r.kind != TraceRecord::Kind::Span) continue;
    const bool isTask = r.name == "rt.task";
    const bool isChunk = r.name == "rt.chunk";
    const bool isRegion = r.name == "rt.region";
    const bool isIdle = r.name == "rt.idle";
    if (!isTask && !isChunk && !isRegion && !isIdle) continue;
    ThreadActivity& t = threads[r.tid];
    t.tid = r.tid;
    if (isTask) {
      ++t.tasks;
      taskSeconds[r.tid] += r.duration;
    } else if (isChunk) {
      ++t.chunks;
      chunkSeconds[r.tid] += r.duration;
    } else if (isRegion) {
      ++t.regions;
      t.busySeconds += r.duration;
      ++report.invocations[attrInt(r.attrs, "version")];
    } else {
      t.idleSeconds += r.duration;
    }
  }
  for (auto& [tid, t] : threads) {
    // Pooled chunks nest inside their task's window, so summing both would
    // double-count; inline chunks (single-worker runs) have no task at all.
    // The larger of the two covers both paths.
    t.busySeconds += std::max(taskSeconds[tid], chunkSeconds[tid]);
    report.threads.push_back(t);
  }

  // ---------------------------------------------------------- evaluator
  const std::uint64_t lookups = report.uniqueEvaluations + report.memoHits;
  report.memoHitRate =
      lookups == 0 ? 0.0
                   : static_cast<double>(report.memoHits) /
                         static_cast<double>(lookups);

  // ------------------------------------------------------ stall detection
  StallInfo& stall = report.stall;
  if (report.convergence.size() >= 2) {
    const double first = report.convergence.front().bestHv;
    const double last = report.convergence.back().bestHv;
    stall.totalImprovement = first > 0.0 ? (last - first) / first : 0.0;
    for (auto it = report.convergence.rbegin();
         std::next(it) != report.convergence.rend(); ++it) {
      if (it->bestHv > std::next(it)->bestHv * (1.0 + 1e-12)) break;
      ++stall.flatTail;
    }
    stall.stalled = stall.totalImprovement < options.stallEpsilon;
    std::ostringstream verdict;
    if (stall.stalled)
      verdict << "STALLED: hypervolume improved only "
              << support::fmtPercent(stall.totalImprovement)
              << " over " << report.convergence.size()
              << " generations (threshold "
              << support::fmtPercent(options.stallEpsilon) << ")";
    else
      verdict << "converged: hypervolume improved "
              << support::fmtPercent(stall.totalImprovement) << " over "
              << report.convergence.size() << " generations ("
              << stall.flatTail << " flat at the tail)";
    stall.verdict = verdict.str();
  } else if (report.convergence.size() == 1) {
    stall.verdict = "single generation: no trajectory to judge";
  } else {
    stall.verdict = "no generation spans in trace";
  }

  return report;
}

std::string renderMarkdown(const Report& report) {
  std::ostringstream out;
  out << "# motune run report\n\n";
  out << "- records: " << report.records << "\n";
  if (report.wallEpochUnix > 0.0)
    out << "- wall epoch (unix): " << support::fmt(report.wallEpochUnix, 3)
        << " (all trace times are steady-clock seconds from this instant)\n";
  out << "\n";

  // Where did the time go.
  out << "## Hot spans (self time)\n\n";
  if (report.hotSpans.empty()) {
    out << "no spans in trace\n\n";
  } else {
    out << mdHeader({"span", "count", "total", "self", "self share"});
    for (const auto& s : report.hotSpans) {
      const double share = report.totalSelfSeconds > 0.0
                               ? s.selfSeconds / report.totalSelfSeconds
                               : 0.0;
      out << mdRow({s.name, std::to_string(s.count),
                    support::fmtSeconds(s.totalSeconds),
                    support::fmtSeconds(s.selfSeconds),
                    support::fmtPercent(share)});
    }
    out << "\n";
  }

  // Convergence.
  out << "## Convergence\n\n";
  if (report.convergence.empty()) {
    out << report.stall.verdict << "\n\n";
  } else {
    out << report.stall.verdict << "\n\n";
    out << mdHeader({"gen", "best V(S)", "gen V(S)", "front", "immigrants",
                     "improved", "curve"});
    double maxHv = 0.0;
    for (const auto& p : report.convergence) maxHv = std::max(maxHv, p.bestHv);
    for (const auto& p : report.convergence) {
      const int bars =
          maxHv > 0.0
              ? static_cast<int>(std::lround(30.0 * p.bestHv / maxHv))
              : 0;
      out << mdRow({std::to_string(p.gen), support::fmt(p.bestHv, 4),
                    support::fmt(p.genHv, 4), std::to_string(p.frontSize),
                    std::to_string(p.immigrants), p.improved ? "yes" : "no",
                    std::string(static_cast<std::size_t>(bars), '#')});
    }
    out << "\n";
  }

  // Pareto front.
  out << "## Final Pareto front\n\n";
  if (report.front.empty()) {
    out << "no front recorded (autotune.front_version events missing)\n\n";
  } else {
    out << mdHeader({"version", "tiles", "threads", "est. time", "resources",
                     "energy"});
    for (std::size_t v = 0; v < report.front.size(); ++v) {
      const auto& a = report.front[v];
      const double joules = attrNumber(a, "joules");
      out << mdRow(
          {"v" + std::to_string(v), attrString(a, "tiles", "?"),
           std::to_string(attrInt(a, "threads")),
           support::fmtSeconds(attrNumber(a, "time_s")),
           support::fmt(attrNumber(a, "resources"), 3) + " core-s",
           joules > 0.0 ? support::fmt(joules, 1) + " J" : "-"});
    }
    out << "\n";
  }

  // Evaluator.
  out << "## Evaluation cache\n\n";
  out << "- unique evaluations: " << report.uniqueEvaluations << "\n";
  out << "- memo hits: " << report.memoHits << "\n";
  out << "- memo hit rate: " << support::fmtPercent(report.memoHitRate)
      << "\n\n";

  if (!report.evalLatency.empty()) {
    out << "## Evaluation latency\n\n";
    out << mdHeader({"count", "mean", "p50", "p90", "p99", "max"});
    out << mdRow({std::to_string(attrInt(report.evalLatency, "count")),
                  support::fmtSeconds(attrNumber(report.evalLatency, "mean")),
                  support::fmtSeconds(attrNumber(report.evalLatency, "p50")),
                  support::fmtSeconds(attrNumber(report.evalLatency, "p90")),
                  support::fmtSeconds(attrNumber(report.evalLatency, "p99")),
                  support::fmtSeconds(attrNumber(report.evalLatency, "max"))});
    out << "\n";
  }

  // Version selection.
  out << "## Runtime version selection\n\n";
  if (report.selectionsByPolicy.empty() && report.invocations.empty()) {
    out << "no region activity in trace\n\n";
  } else {
    if (!report.selectionsByPolicy.empty()) {
      out << mdHeader({"policy", "version", "selections"});
      for (const auto& [policy, versions] : report.selectionsByPolicy)
        for (const auto& [version, n] : versions)
          out << mdRow({policy, "v" + std::to_string(version),
                        std::to_string(n)});
      out << "\n";
    }
    if (!report.invocations.empty()) {
      out << mdHeader({"version", "invocations"});
      for (const auto& [version, n] : report.invocations)
        out << mdRow({"v" + std::to_string(version), std::to_string(n)});
      out << "\n";
    }
  }
  if (!report.adaptiveCounters.empty()) {
    out << mdHeader({"adaptive counter", "value"});
    for (const auto& [counter, n] : report.adaptiveCounters)
      out << mdRow({counter, std::to_string(n)});
    out << "\n";
  }

  // Model validation.
  out << "## Cost model vs. cache simulator\n\n";
  if (report.validations.empty()) {
    out << "no validation samples (run `motune tune --validate`)\n\n";
  } else {
    out << mdHeader({"config", "model DRAM", "sim DRAM", "ratio",
                     "model time", "sim time"});
    for (const auto& a : report.validations) {
      out << mdRow({attrString(a, "config", "?"),
                    support::fmt(attrNumber(a, "model_dram_mb"), 3) + " MB",
                    support::fmt(attrNumber(a, "sim_dram_mb"), 3) + " MB",
                    support::fmt(attrNumber(a, "dram_ratio"), 2) + "x",
                    support::fmtSeconds(attrNumber(a, "model_seconds")),
                    support::fmtSeconds(attrNumber(a, "sim_seconds"))});
    }
    out << "\n";
  }

  // Runtime threads.
  out << "## Runtime threads\n\n";
  if (report.threads.empty()) {
    out << "no runtime ring events in trace\n\n";
  } else {
    out << mdHeader({"tid", "tasks", "chunks", "regions", "busy", "idle"});
    for (const auto& t : report.threads)
      out << mdRow({std::to_string(t.tid), std::to_string(t.tasks),
                    std::to_string(t.chunks), std::to_string(t.regions),
                    support::fmtSeconds(t.busySeconds),
                    support::fmtSeconds(t.idleSeconds)});
    out << "\n";
  }
  out << "- ring events dropped: " << report.ringDrops
      << (report.sawRingDropCounter ? "" : " (counter missing from trace!)")
      << "\n\n";

  // Collapsed stacks last: machine-consumable tail (flamegraph.pl format).
  out << "## Collapsed stacks (flamegraph format, microseconds)\n\n";
  out << "```\n" << report.collapsedStacks << "```\n";
  return out.str();
}

support::Json reportToJson(const Report& report) {
  support::JsonObject root;
  root["records"] = support::Json(report.records);
  root["wall_epoch_unix"] = support::Json(report.wallEpochUnix);

  support::JsonArray hot;
  for (const auto& s : report.hotSpans)
    hot.push_back(support::Json(support::JsonObject{
        {"name", support::Json(s.name)},
        {"count", support::Json(s.count)},
        {"total_seconds", support::Json(s.totalSeconds)},
        {"self_seconds", support::Json(s.selfSeconds)}}));
  root["hot_spans"] = support::Json(std::move(hot));

  support::JsonArray conv;
  for (const auto& p : report.convergence)
    conv.push_back(support::Json(support::JsonObject{
        {"gen", support::Json(p.gen)},
        {"best_hv", support::Json(p.bestHv)},
        {"gen_hv", support::Json(p.genHv)},
        {"front_size", support::Json(p.frontSize)},
        {"immigrants", support::Json(p.immigrants)},
        {"improved", support::Json(p.improved)}}));
  root["convergence"] = support::Json(std::move(conv));

  root["stall"] = support::Json(support::JsonObject{
      {"stalled", support::Json(report.stall.stalled)},
      {"flat_tail", support::Json(report.stall.flatTail)},
      {"total_improvement", support::Json(report.stall.totalImprovement)},
      {"verdict", support::Json(report.stall.verdict)}});

  support::JsonArray front;
  for (const auto& a : report.front) front.push_back(support::Json(a));
  root["front"] = support::Json(std::move(front));

  root["evaluator"] = support::Json(support::JsonObject{
      {"unique", support::Json(report.uniqueEvaluations)},
      {"memo_hits", support::Json(report.memoHits)},
      {"memo_hit_rate", support::Json(report.memoHitRate)},
      {"latency", support::Json(report.evalLatency)}});

  support::JsonObject selections;
  for (const auto& [policy, versions] : report.selectionsByPolicy) {
    support::JsonObject byVersion;
    for (const auto& [version, n] : versions)
      byVersion["v" + std::to_string(version)] = support::Json(n);
    selections[policy] = support::Json(std::move(byVersion));
  }
  root["selections"] = support::Json(std::move(selections));

  support::JsonObject invocations;
  for (const auto& [version, n] : report.invocations)
    invocations["v" + std::to_string(version)] = support::Json(n);
  root["invocations"] = support::Json(std::move(invocations));

  // Only present when the trace carries adaptive-selection counters, so
  // tuning-only report JSON is unchanged.
  if (!report.adaptiveCounters.empty()) {
    support::JsonObject adaptive;
    for (const auto& [counter, n] : report.adaptiveCounters)
      adaptive[counter] = support::Json(n);
    root["adaptive"] = support::Json(std::move(adaptive));
  }

  support::JsonArray validations;
  for (const auto& a : report.validations)
    validations.push_back(support::Json(a));
  root["validations"] = support::Json(std::move(validations));

  support::JsonArray threads;
  for (const auto& t : report.threads)
    threads.push_back(support::Json(support::JsonObject{
        {"tid", support::Json(static_cast<std::uint64_t>(t.tid))},
        {"tasks", support::Json(t.tasks)},
        {"chunks", support::Json(t.chunks)},
        {"regions", support::Json(t.regions)},
        {"busy_seconds", support::Json(t.busySeconds)},
        {"idle_seconds", support::Json(t.idleSeconds)}}));
  root["threads"] = support::Json(std::move(threads));
  root["ring_drops"] = support::Json(report.ringDrops);

  root["collapsed_stacks"] = support::Json(report.collapsedStacks);
  return support::Json(std::move(root));
}

} // namespace motune::observe
