// Prometheus text exposition (format version 0.0.4) for the metric
// registry. The daemon's `stats --format prometheus` verb and the CI
// serve-gate scrape use this to publish every counter, gauge and DDSketch
// histogram (as a quantile summary) without taking on a client library.
#pragma once

#include <string>

namespace motune::observe {

class MetricsRegistry;

/// Sanitizes a metric name into the Prometheus grammar:
/// `motune_` prefix, dots and other invalid characters to underscores.
std::string prometheusName(const std::string& name);

/// Renders the whole registry as Prometheus text exposition:
/// counters as `motune_<name>_total`, gauges plainly, histograms as
/// summaries (`{quantile="0.5|0.9|0.99"}` samples plus `_sum`/`_count`).
/// Deterministic ordering (registry iteration order is sorted by name).
std::string renderPrometheus(const MetricsRegistry& registry);

} // namespace motune::observe
