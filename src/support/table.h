// Plain-text table rendering for the experiment harness.
//
// Every bench binary reproduces one of the paper's tables/figures; this
// renderer keeps their output uniform and diff-friendly.
#pragma once

#include <string>
#include <vector>

namespace motune::support {

/// Number formatting helpers (fixed precision, percentages, compact ints).
std::string fmt(double v, int precision = 3);
std::string fmtPercent(double fraction, int precision = 1); ///< 0.151 -> "15.1%"
std::string fmtSeconds(double seconds);                     ///< scales to ms/us

/// Column-aligned ASCII table with an optional title and column headers.
class TextTable {
public:
  explicit TextTable(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row; defines the number of columns.
  void setHeader(std::vector<std::string> header);

  /// Appends a data row; must match the header width if one was set.
  void addRow(std::vector<std::string> row);

  /// Appends a horizontal separator between row groups.
  void addSeparator();

  /// Renders the table with box-drawing borders.
  std::string render() const;

private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

} // namespace motune::support
