// Lightweight precondition / invariant checking.
//
// MOTUNE_CHECK is always on (these guard API contracts, not hot loops);
// MOTUNE_DCHECK compiles away in release builds and may be used on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace motune::support {

/// Thrown when a MOTUNE_CHECK fails; carries the failing expression and
/// source location so test and tool output is actionable.
class CheckError : public std::logic_error {
public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void checkFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

} // namespace motune::support

#define MOTUNE_CHECK(expr)                                                     \
  do {                                                                         \
    if (!(expr))                                                               \
      ::motune::support::checkFailed(#expr, __FILE__, __LINE__, "");           \
  } while (false)

#define MOTUNE_CHECK_MSG(expr, msg)                                            \
  do {                                                                         \
    if (!(expr))                                                               \
      ::motune::support::checkFailed(#expr, __FILE__, __LINE__, (msg));        \
  } while (false)

#ifdef NDEBUG
#define MOTUNE_DCHECK(expr) ((void)0)
#else
#define MOTUNE_DCHECK(expr) MOTUNE_CHECK(expr)
#endif
