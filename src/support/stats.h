// Small statistics helpers used by evaluators (median-of-repeats, as in the
// paper's measurement protocol) and by the experiment harness (means over
// repeated optimizer runs, Table VI).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace motune::support {

double mean(std::span<const double> xs);
double median(std::span<const double> xs);          ///< copies, O(n log n)
double stddev(std::span<const double> xs);           ///< sample std deviation
double minOf(std::span<const double> xs);
double maxOf(std::span<const double> xs);

/// Linear-interpolated percentile, q in [0, 100].
double percentile(std::span<const double> xs, double q);

/// Summary of a sample; computed in one pass over a sorted copy.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> xs);

} // namespace motune::support
