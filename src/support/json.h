// Minimal JSON reader/writer (no external dependencies).
//
// Used to persist tuning artifacts (autotune/artifact.h): the static
// optimizer runs once at "compile time", its Pareto set is saved next to
// the binary, and the runtime loads it on startup — the deployment story
// of the paper's multi-versioned executables, without recompiling.
//
// Supports the full JSON grammar except \uXXXX escapes beyond ASCII.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace motune::support {

class Json;
using JsonArray = std::vector<Json>;
using JsonObject = std::map<std::string, Json>;

/// An immutable-ish JSON value (null, bool, number, string, array, object).
class Json {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  Json() : kind_(Kind::Null) {}
  Json(std::nullptr_t) : kind_(Kind::Null) {} // NOLINT(google-explicit-*)
  Json(bool b) : kind_(Kind::Bool), bool_(b) {} // NOLINT
  Json(double v) : kind_(Kind::Number), number_(v) {} // NOLINT
  Json(int v) : kind_(Kind::Number), number_(v) {} // NOLINT
  Json(std::int64_t v) // NOLINT
      : kind_(Kind::Number), number_(static_cast<double>(v)) {}
  Json(std::uint64_t v) // NOLINT
      : kind_(Kind::Number), number_(static_cast<double>(v)) {}
  Json(const char* s) : kind_(Kind::String), string_(s) {} // NOLINT
  Json(std::string s) : kind_(Kind::String), string_(std::move(s)) {} // NOLINT
  Json(JsonArray a); // NOLINT
  Json(JsonObject o); // NOLINT

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::Null; }

  /// Typed accessors; MOTUNE_CHECK on kind mismatch.
  bool asBool() const;
  double asNumber() const;
  std::int64_t asInt() const;
  const std::string& asString() const;
  const JsonArray& asArray() const;
  const JsonObject& asObject() const;

  /// Object field access; throws if not an object or key missing.
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const;

  /// Array element access.
  const Json& operator[](std::size_t i) const;
  std::size_t size() const;

  /// Serialization. `indent` < 0 emits compact single-line JSON.
  std::string dump(int indent = 2) const;

  /// Parsing; throws support::CheckError with position info on bad input.
  static Json parse(const std::string& text);

private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

} // namespace motune::support
