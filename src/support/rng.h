// Deterministic, seedable random number generation.
//
// All stochastic components of the framework (GDE3, random search, NSGA-II,
// noise injection) draw from this engine so that every experiment in the
// paper reproduction is exactly repeatable from a seed.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace motune::support {

/// xoshiro256** 1.0 (Blackman & Vigna), seeded via SplitMix64.
///
/// Satisfies std::uniform_random_bit_generator, so it can be used with the
/// <random> distributions as well as the convenience helpers below.
class Rng {
public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initializes the full 256-bit state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    for (auto& word : state_) word = splitMix64(seed);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Marsaglia polar method.
  double gaussian();

  /// Derives an independent child stream; used to give each optimizer run
  /// or worker its own generator without correlated sequences.
  Rng split() { return Rng((*this)() ^ 0xd2b74407b1ce6e93ull); }

  /// Complete generator state — the four xoshiro words plus the Marsaglia
  /// gaussian carry — so a stream can be persisted mid-sequence and
  /// continued bit-identically (checkpoint/resume, src/session/).
  struct State {
    std::array<std::uint64_t, 4> words{};
    double cachedGaussian = 0.0;
    bool hasCachedGaussian = false;
  };

  State state() const {
    State s;
    for (std::size_t i = 0; i < 4; ++i) s.words[i] = state_[i];
    s.cachedGaussian = cachedGaussian_;
    s.hasCachedGaussian = hasCachedGaussian_;
    return s;
  }

  void setState(const State& s) {
    for (std::size_t i = 0; i < 4; ++i) state_[i] = s.words[i];
    cachedGaussian_ = s.cachedGaussian;
    hasCachedGaussian_ = s.hasCachedGaussian;
  }

private:
  static std::uint64_t splitMix64(std::uint64_t& x) {
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  double cachedGaussian_ = 0.0;
  bool hasCachedGaussian_ = false;
};

} // namespace motune::support
