// One byte-granular memory access record.
//
// Shared vocabulary between trace producers (the IR executors in src/ir)
// and trace consumers (the cache simulator in src/cachesim): producers
// append flat batches of these records, consumers process whole batches,
// so a trace crosses the module boundary without a per-access callback
// dispatch on the hot path.
#pragma once

#include <cstdint>

namespace motune::support {

struct MemAccess {
  std::uint64_t addr = 0;
  std::int32_t bytes = 0;
  bool isWrite = false;
};

} // namespace motune::support
