#include "support/table.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace motune::support {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

std::string fmtPercent(double fraction, int precision) {
  return fmt(fraction * 100.0, precision) + "%";
}

std::string fmtSeconds(double seconds) {
  if (!std::isfinite(seconds)) return "inf";
  if (seconds >= 1.0) return fmt(seconds, 3) + " s";
  if (seconds >= 1e-3) return fmt(seconds * 1e3, 3) + " ms";
  return fmt(seconds * 1e6, 3) + " us";
}

void TextTable::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::addRow(std::vector<std::string> row) {
  if (!header_.empty())
    MOTUNE_CHECK_MSG(row.size() == header_.size(),
                     "row width must match header width");
  rows_.push_back({std::move(row), false});
}

void TextTable::addSeparator() { rows_.push_back({{}, true}); }

std::string TextTable::render() const {
  // Compute column widths across header and all rows.
  std::size_t cols = header_.size();
  for (const auto& r : rows_)
    cols = std::max(cols, r.cells.size());
  std::vector<std::size_t> width(cols, 0);
  auto account = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c)
      width[c] = std::max(width[c], cells[c].size());
  };
  account(header_);
  for (const auto& r : rows_)
    if (!r.separator) account(r.cells);

  auto rule = [&] {
    std::string s = "+";
    for (std::size_t c = 0; c < cols; ++c)
      s += std::string(width[c] + 2, '-') + "+";
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& cells) {
    std::string s = "|";
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      s += " " + cell + std::string(width[c] - cell.size(), ' ') + " |";
    }
    return s + "\n";
  };

  std::string out;
  if (!title_.empty()) out += title_ + "\n";
  out += rule();
  if (!header_.empty()) {
    out += line(header_);
    out += rule();
  }
  for (const auto& r : rows_)
    out += r.separator ? rule() : line(r.cells);
  out += rule();
  return out;
}

} // namespace motune::support
