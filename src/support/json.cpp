#include "support/json.h"

#include "support/check.h"

#include <cmath>
#include <cstdio>

namespace motune::support {

Json::Json(JsonArray a)
    : kind_(Kind::Array), array_(std::make_shared<JsonArray>(std::move(a))) {}

Json::Json(JsonObject o)
    : kind_(Kind::Object),
      object_(std::make_shared<JsonObject>(std::move(o))) {}

bool Json::asBool() const {
  MOTUNE_CHECK_MSG(kind_ == Kind::Bool, "JSON value is not a bool");
  return bool_;
}

double Json::asNumber() const {
  MOTUNE_CHECK_MSG(kind_ == Kind::Number, "JSON value is not a number");
  return number_;
}

std::int64_t Json::asInt() const {
  return static_cast<std::int64_t>(std::llround(asNumber()));
}

const std::string& Json::asString() const {
  MOTUNE_CHECK_MSG(kind_ == Kind::String, "JSON value is not a string");
  return string_;
}

const JsonArray& Json::asArray() const {
  MOTUNE_CHECK_MSG(kind_ == Kind::Array, "JSON value is not an array");
  return *array_;
}

const JsonObject& Json::asObject() const {
  MOTUNE_CHECK_MSG(kind_ == Kind::Object, "JSON value is not an object");
  return *object_;
}

const Json& Json::at(const std::string& key) const {
  const JsonObject& obj = asObject();
  auto it = obj.find(key);
  MOTUNE_CHECK_MSG(it != obj.end(), "missing JSON key: " + key);
  return it->second;
}

bool Json::has(const std::string& key) const {
  return kind_ == Kind::Object && object_->count(key) > 0;
}

const Json& Json::operator[](std::size_t i) const {
  const JsonArray& arr = asArray();
  MOTUNE_CHECK_MSG(i < arr.size(), "JSON array index out of range");
  return arr[i];
}

std::size_t Json::size() const {
  if (kind_ == Kind::Array) return array_->size();
  if (kind_ == Kind::Object) return object_->size();
  MOTUNE_CHECK_MSG(false, "size() on a scalar JSON value");
  return 0;
}

namespace {

void escapeTo(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\n': out += "\\n"; break;
    case '\t': out += "\\t"; break;
    case '\r': out += "\\r"; break;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += c;
      }
    }
  }
  out += '"';
}

void numberTo(double v, std::string& out) {
  if (v == std::llround(v) && std::abs(v) < 1e15) {
    out += std::to_string(std::llround(v));
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

} // namespace

void Json::dumpTo(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent >= 0 ? "\n" + std::string(static_cast<std::size_t>(indent) *
                                           (depth + 1),
                                       ' ')
                  : "";
  const std::string padEnd =
      indent >= 0
          ? "\n" + std::string(static_cast<std::size_t>(indent) * depth, ' ')
          : "";
  switch (kind_) {
  case Kind::Null: out += "null"; return;
  case Kind::Bool: out += bool_ ? "true" : "false"; return;
  case Kind::Number: numberTo(number_, out); return;
  case Kind::String: escapeTo(string_, out); return;
  case Kind::Array: {
    if (array_->empty()) {
      out += "[]";
      return;
    }
    out += '[';
    bool first = true;
    for (const Json& v : *array_) {
      if (!first) out += ',';
      out += pad;
      v.dumpTo(out, indent, depth + 1);
      first = false;
    }
    out += padEnd;
    out += ']';
    return;
  }
  case Kind::Object: {
    if (object_->empty()) {
      out += "{}";
      return;
    }
    out += '{';
    bool first = true;
    for (const auto& [key, value] : *object_) {
      if (!first) out += ',';
      out += pad;
      escapeTo(key, out);
      out += indent >= 0 ? ": " : ":";
      value.dumpTo(out, indent, depth + 1);
      first = false;
    }
    out += padEnd;
    out += '}';
    return;
  }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse() {
    const Json v = value();
    skipWs();
    MOTUNE_CHECK_MSG(pos_ == text_.size(),
                     "trailing characters after JSON value at " + where());
    return v;
  }

private:
  std::string where() const { return "offset " + std::to_string(pos_); }

  void skipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    MOTUNE_CHECK_MSG(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    MOTUNE_CHECK_MSG(peek() == c, std::string("expected '") + c + "' at " +
                                      where());
    ++pos_;
  }

  bool consume(const std::string& word) {
    if (text_.compare(pos_, word.size(), word) == 0) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json value() {
    skipWs();
    const char c = peek();
    if (c == '{') return object();
    if (c == '[') return array();
    if (c == '"') return Json(string());
    if (consume("true")) return Json(true);
    if (consume("false")) return Json(false);
    if (consume("null")) return Json(nullptr);
    return number();
  }

  Json object() {
    expect('{');
    JsonObject obj;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return Json(std::move(obj));
    }
    for (;;) {
      skipWs();
      std::string key = string();
      skipWs();
      expect(':');
      obj.emplace(std::move(key), value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return Json(std::move(obj));
    }
  }

  Json array() {
    expect('[');
    JsonArray arr;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return Json(std::move(arr));
    }
    for (;;) {
      arr.push_back(value());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return Json(std::move(arr));
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      MOTUNE_CHECK_MSG(pos_ < text_.size(), "unterminated JSON string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      MOTUNE_CHECK_MSG(pos_ < text_.size(), "dangling escape in JSON string");
      const char esc = text_[pos_++];
      switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 't': out += '\t'; break;
      case 'r': out += '\r'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        MOTUNE_CHECK_MSG(pos_ + 4 <= text_.size(), "bad \\u escape");
        const std::string hex = text_.substr(pos_, 4);
        pos_ += 4;
        const auto code = static_cast<unsigned>(std::stoul(hex, nullptr, 16));
        MOTUNE_CHECK_MSG(code < 0x80, "non-ASCII \\u escapes unsupported");
        out += static_cast<char>(code);
        break;
      }
      default:
        MOTUNE_CHECK_MSG(false, "invalid escape in JSON string");
      }
    }
  }

  Json number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    MOTUNE_CHECK_MSG(pos_ > start, "invalid JSON number at " + where());
    try {
      return Json(std::stod(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      MOTUNE_CHECK_MSG(false, "invalid JSON number at " + where());
    }
    return Json(nullptr);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

} // namespace

Json Json::parse(const std::string& text) { return Parser(text).parse(); }

} // namespace motune::support
