#include "support/stats.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace motune::support {

namespace {
std::vector<double> sortedCopy(std::span<const double> xs) {
  std::vector<double> s(xs.begin(), xs.end());
  std::sort(s.begin(), s.end());
  return s;
}
} // namespace

double mean(std::span<const double> xs) {
  MOTUNE_CHECK(!xs.empty());
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

double median(std::span<const double> xs) {
  MOTUNE_CHECK(!xs.empty());
  auto s = sortedCopy(xs);
  const std::size_t n = s.size();
  return n % 2 == 1 ? s[n / 2] : 0.5 * (s[n / 2 - 1] + s[n / 2]);
}

double stddev(std::span<const double> xs) {
  MOTUNE_CHECK(xs.size() >= 2);
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size() - 1));
}

double minOf(std::span<const double> xs) {
  MOTUNE_CHECK(!xs.empty());
  return *std::min_element(xs.begin(), xs.end());
}

double maxOf(std::span<const double> xs) {
  MOTUNE_CHECK(!xs.empty());
  return *std::max_element(xs.begin(), xs.end());
}

double percentile(std::span<const double> xs, double q) {
  MOTUNE_CHECK(!xs.empty());
  MOTUNE_CHECK(q >= 0.0 && q <= 100.0);
  auto s = sortedCopy(xs);
  if (s.size() == 1) return s.front();
  const double pos = q / 100.0 * static_cast<double>(s.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= s.size()) return s.back();
  return s[lo] * (1.0 - frac) + s[lo + 1] * frac;
}

Summary summarize(std::span<const double> xs) {
  Summary out;
  out.n = xs.size();
  if (xs.empty()) return out;
  out.mean = mean(xs);
  out.median = median(xs);
  out.min = minOf(xs);
  out.max = maxOf(xs);
  out.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  return out;
}

} // namespace motune::support
