#include "support/rng.h"

#include "support/check.h"

#include <cmath>

namespace motune::support {

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) {
  MOTUNE_CHECK(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>((*this)()); // full range
  // Lemire-style rejection-free-ish: unbiased via rejection on the tail.
  const std::uint64_t limit = max() - max() % span;
  std::uint64_t draw;
  do {
    draw = (*this)();
  } while (draw >= limit);
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::gaussian() {
  if (hasCachedGaussian_) {
    hasCachedGaussian_ = false;
    return cachedGaussian_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cachedGaussian_ = v * factor;
  hasCachedGaussian_ = true;
  return u * factor;
}

} // namespace motune::support
