// Loop fusion and fission (distribution).
//
// The paper names fusion and fission among the transformations that force
// multi-versioning over parameterized code ("there are some
// transformations such as loop unrolling, fission and fusion which can not
// be realized using parameterized code", §IV) — so a faithful framework
// must actually have them. Legality is checked with the dependence
// machinery from analyzer/ at the call site (see analyzer::canFuse /
// canDistribute); the functions here are the mechanics plus a built-in
// conservative check.
#pragma once

#include "ir/program.h"

namespace motune::transform {

/// True if the program body consists of (at least) two adjacent top-level
/// loops with identical headers (same bounds and step) — the structural
/// precondition for fusion.
bool fusionCandidate(const ir::Program& p);

/// Fuses the first two top-level loops into one (bodies concatenated,
/// second loop's induction variable renamed to the first's). Checks
/// structural preconditions and the conservative dependence condition:
/// every dependence between the two bodies must be non-negative at the
/// fused level (no statement of the first loop may consume values the
/// second loop produces in a *later* iteration). Throws on violation.
ir::Program fuse(const ir::Program& p);

/// Distributes (fissions) the root loop of a single-loop program whose
/// body holds multiple statements into one loop per statement. Legal when
/// no loop-carried dependence runs *backward* between two statements
/// (forward dependences are preserved by the resulting loop order);
/// conservative: any loop-carried dependence between distinct statements
/// blocks distribution. Throws on violation.
ir::Program distribute(const ir::Program& p);

} // namespace motune::transform
