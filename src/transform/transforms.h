// Loop transformations: the mechanics behind the paper's transformation
// skeletons (tiling + collapsing + parallelization, plus unrolling and
// interchange as additional skeleton building blocks).
//
// These functions are pure mechanics: they assume legality has been
// established by the analyzer (see analyzer/region.h, which combines the
// dependence test with these transforms into checked skeletons). Each
// returns a new program; inputs are never mutated.
#pragma once

#include "ir/program.h"

#include <cstdint>
#include <span>
#include <vector>

namespace motune::transform {

/// Tiles the outermost `sizes.size()` perfectly nested loops with the given
/// tile sizes. Loop `l` with header `for (iv = lo; iv < hi)` becomes a tile
/// loop `for (iv_t = lo; iv_t < hi; iv_t += T)` and a point loop
/// `for (iv = iv_t; iv < min(iv_t + T, hi))`; all tile loops are placed
/// outside all point loops (classic strip-mine-and-interchange).
///
/// Tile sizes of 1 degenerate gracefully; a size >= the trip count yields a
/// single tile. Requires the band loops to be perfectly nested, have step
/// 1, and bounds not depending on band induction variables (rectangular
/// iteration space).
ir::Program tile(const ir::Program& p, std::span<const std::int64_t> sizes);

/// Marks the outermost loop parallel with `collapse` merged loop levels
/// (the paper collapses the two outermost tile loops before parallelizing
/// to mitigate load imbalance from large tiles, §IV).
ir::Program parallelizeOuter(const ir::Program& p, int collapse);

/// Permutes the outermost `perm.size()` perfectly nested loops;
/// perm[i] = j places original loop j at position i.
ir::Program interchange(const ir::Program& p, std::span<const int> perm);

/// Unrolls the innermost loop by `factor`, emitting a remainder loop when
/// the trip count is not statically divisible.
ir::Program unrollInnermost(const ir::Program& p, int factor);

/// Number of perfectly nested loops starting at the root (a loop whose
/// body is exactly one loop continues the perfect nest).
std::size_t perfectNestDepth(const ir::Program& p);

/// The headers of the outermost perfect nest, outermost first.
std::vector<const ir::Loop*> perfectNest(const ir::Program& p);

} // namespace motune::transform
