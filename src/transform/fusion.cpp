#include "transform/fusion.h"

#include "support/check.h"

#include <optional>

namespace motune::transform {

namespace {

struct FlatAccess {
  std::string array;
  std::vector<ir::AffineExpr> subscripts;
  bool isWrite;
};

void collectExprAccesses(const ir::Expr& e, std::vector<FlatAccess>& out) {
  switch (e.kind) {
  case ir::Expr::Kind::Read:
    out.push_back({e.array, e.subscripts, false});
    return;
  case ir::Expr::Kind::Binary:
    collectExprAccesses(*e.lhs, out);
    collectExprAccesses(*e.rhs, out);
    return;
  case ir::Expr::Kind::Unary:
    collectExprAccesses(*e.lhs, out);
    return;
  default:
    return;
  }
}

void collectStmtAccesses(const ir::Stmt& s, std::vector<FlatAccess>& out) {
  if (s.kind == ir::Stmt::Kind::Assign) {
    collectExprAccesses(*s.assign.rhs, out);
    if (s.assign.accumulate)
      out.push_back({s.assign.array, s.assign.subscripts, false});
    out.push_back({s.assign.array, s.assign.subscripts, true});
    return;
  }
  for (const auto& child : s.loop.body) collectStmtAccesses(*child, out);
}

enum class Cross { None, Zero, Positive, NegativeOnly, Unknown };

/// Dependence between access A (iteration j of loop `iv`) and access B
/// (iteration i): solves A(j) == B(i) for delta = j - i.
///  None: no common element. Zero/Positive/NegativeOnly: sign of delta.
///  Unknown: outside the solvable affine subset (treat as conflicting).
Cross crossDistance(const FlatAccess& a, const FlatAccess& b,
                    const std::string& iv) {
  if (a.array != b.array) return Cross::None;
  if (a.subscripts.size() != b.subscripts.size()) return Cross::Unknown;

  std::optional<std::int64_t> delta;
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    const ir::AffineExpr& fa = a.subscripts[d];
    const ir::AffineExpr& fb = b.subscripts[d];
    // Identical linear parts required for the uniform solve.
    const ir::AffineExpr diff = fa - fb;
    if (!diff.isConstant() && !(diff.variables() ==
                                std::vector<std::string>{iv}))
      return Cross::Unknown;

    const std::int64_t c = fa.coeffOf(iv);
    if (fa.coeffOf(iv) != fb.coeffOf(iv)) return Cross::Unknown;
    const std::int64_t residual =
        fb.constantTerm() - fa.constantTerm(); // c*delta = residual
    const bool hasOtherIvs = fa.terms().size() > (c != 0 ? 1u : 0u);
    if (c == 0) {
      // A dimension driven only by inner loop variables is satisfiable by
      // SOME pair of inner iterations whatever the constant shift (both
      // sides sweep the same range), so it constrains nothing; only a
      // pure-constant mismatch proves independence.
      if (hasOtherIvs) continue;
      if (residual != 0) return Cross::None; // provably disjoint
      continue;
    }
    if (residual % c != 0) return Cross::None;
    const std::int64_t v = residual / c;
    if (delta.has_value() && *delta != v) return Cross::None;
    delta = v;
  }
  if (!delta.has_value()) return Cross::Zero; // same element every iteration
  if (*delta == 0) return Cross::Zero;
  return *delta > 0 ? Cross::Positive : Cross::NegativeOnly;
}

/// True if a dependence with positive iteration distance from the FIRST
/// statement group to the SECOND exists (the pattern both fusion and
/// distribution must reject, see header).
bool hasForbiddenCross(const std::vector<FlatAccess>& first,
                       const std::vector<FlatAccess>& second,
                       const std::string& iv) {
  for (const auto& a : first) {
    for (const auto& b : second) {
      if (!a.isWrite && !b.isWrite) continue;
      const Cross c = crossDistance(a, b, iv);
      if (c == Cross::Positive || c == Cross::Unknown) return true;
    }
  }
  return false;
}

} // namespace

bool fusionCandidate(const ir::Program& p) {
  if (p.body.size() < 2) return false;
  if (p.body[0]->kind != ir::Stmt::Kind::Loop ||
      p.body[1]->kind != ir::Stmt::Kind::Loop)
    return false;
  const ir::Loop& a = p.body[0]->loop;
  const ir::Loop& b = p.body[1]->loop;
  return a.lower == b.lower && a.upper == b.upper && a.step == b.step;
}

ir::Program fuse(const ir::Program& p) {
  MOTUNE_CHECK_MSG(fusionCandidate(p),
                   "program is not a fusion candidate (need two adjacent "
                   "loops with identical headers)");
  ir::Program out = p.clone();
  ir::Loop& first = out.body[0]->loop;
  ir::Loop& second = out.body[1]->loop;

  // Rename the second loop's induction variable to the first's.
  const ir::AffineExpr repl = ir::AffineExpr::var(first.iv);
  std::vector<ir::StmtPtr> renamed;
  for (auto& child : second.body) {
    MOTUNE_CHECK_MSG(child->kind == ir::Stmt::Kind::Assign,
                     "fusion supports flat loop bodies");
    ir::Assign a = child->assign;
    for (auto& sub : a.subscripts) sub = sub.substitute(second.iv, repl);
    a.rhs = a.rhs->substitute(second.iv, repl);
    renamed.push_back(ir::Stmt::makeAssign(std::move(a)));
  }
  for (const auto& child : first.body)
    MOTUNE_CHECK_MSG(child->kind == ir::Stmt::Kind::Assign,
                     "fusion supports flat loop bodies");

  // Legality: the second body at iteration i must not touch data the first
  // body writes at a LATER iteration (fusion would move it ahead of that
  // write), and vice versa for writes in the second body.
  std::vector<FlatAccess> accA, accB;
  for (const auto& child : first.body) collectStmtAccesses(*child, accA);
  for (const auto& child : renamed) collectStmtAccesses(*child, accB);
  MOTUNE_CHECK_MSG(!hasForbiddenCross(accA, accB, first.iv),
                   "fusion is illegal: a dependence would be reversed");

  for (auto& stmt : renamed) first.body.push_back(std::move(stmt));
  out.body.erase(out.body.begin() + 1);
  return out;
}

ir::Program distribute(const ir::Program& p) {
  MOTUNE_CHECK_MSG(p.body.size() == 1 &&
                       p.body[0]->kind == ir::Stmt::Kind::Loop,
                   "distribution expects a single root loop");
  const ir::Loop& root = p.body[0]->loop;
  MOTUNE_CHECK_MSG(root.body.size() >= 2,
                   "distribution needs at least two statements");

  // Pairwise legality: no dependence may run from a LATER iteration of an
  // earlier statement to an earlier iteration of a later one.
  std::vector<std::vector<FlatAccess>> accesses(root.body.size());
  for (std::size_t s = 0; s < root.body.size(); ++s)
    collectStmtAccesses(*root.body[s], accesses[s]);
  for (std::size_t s1 = 0; s1 < accesses.size(); ++s1) {
    for (std::size_t s2 = s1 + 1; s2 < accesses.size(); ++s2) {
      MOTUNE_CHECK_MSG(
          !hasForbiddenCross(accesses[s1], accesses[s2], root.iv),
          "distribution is illegal: a backward dependence exists");
    }
  }

  ir::Program out;
  out.name = p.name;
  out.arrays = p.arrays;
  for (const auto& stmt : root.body) {
    ir::Loop loop;
    loop.iv = root.iv;
    loop.lower = root.lower;
    loop.upper = root.upper;
    loop.step = root.step;
    loop.parallel = root.parallel;
    loop.collapse = root.collapse;
    loop.body.push_back(stmt->clone());
    out.body.push_back(ir::Stmt::makeLoop(std::move(loop)));
  }
  return out;
}

} // namespace motune::transform
