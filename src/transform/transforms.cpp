#include "transform/transforms.h"

#include "support/check.h"

#include <algorithm>

namespace motune::transform {

namespace {

/// Mutable view of the outermost perfect nest of a (cloned) program.
std::vector<ir::Loop*> mutablePerfectNest(ir::Program& p) {
  std::vector<ir::Loop*> nest;
  if (p.body.size() != 1 || p.body.front()->kind != ir::Stmt::Kind::Loop)
    return nest;
  ir::Loop* loop = &p.body.front()->loop;
  nest.push_back(loop);
  while (loop->body.size() == 1 &&
         loop->body.front()->kind == ir::Stmt::Kind::Loop) {
    loop = &loop->body.front()->loop;
    nest.push_back(loop);
  }
  return nest;
}

} // namespace

std::size_t perfectNestDepth(const ir::Program& p) {
  return perfectNest(p).size();
}

std::vector<const ir::Loop*> perfectNest(const ir::Program& p) {
  std::vector<const ir::Loop*> nest;
  if (p.body.size() != 1 || p.body.front()->kind != ir::Stmt::Kind::Loop)
    return nest;
  const ir::Loop* loop = &p.body.front()->loop;
  nest.push_back(loop);
  while (loop->body.size() == 1 &&
         loop->body.front()->kind == ir::Stmt::Kind::Loop) {
    loop = &loop->body.front()->loop;
    nest.push_back(loop);
  }
  return nest;
}

ir::Program tile(const ir::Program& p, std::span<const std::int64_t> sizes) {
  const std::size_t depth = sizes.size();
  MOTUNE_CHECK(depth >= 1);

  ir::Program out = p.clone();
  std::vector<ir::Loop*> nest = mutablePerfectNest(out);
  MOTUNE_CHECK_MSG(nest.size() >= depth,
                   "tile band exceeds the perfect nest depth");

  // Validate the band is rectangular with unit steps.
  for (std::size_t l = 0; l < depth; ++l) {
    MOTUNE_CHECK_MSG(nest[l]->step == 1, "tiling requires unit-step loops");
    MOTUNE_CHECK_MSG(!nest[l]->upper.cap.has_value(),
                     "band loop already carries a min() cap (already tiled?)");
    for (std::size_t m = 0; m < depth; ++m) {
      MOTUNE_CHECK_MSG(!nest[l]->lower.dependsOn(nest[m]->iv) &&
                           !nest[l]->upper.base.dependsOn(nest[m]->iv),
                       "tiling requires a rectangular band");
    }
    MOTUNE_CHECK_MSG(sizes[l] >= 1, "tile sizes must be positive");
  }

  // Build point loops (innermost part), reusing the original iv names so the
  // loop body is unchanged. Work inside-out: the innermost point loop
  // adopts the body below the band.
  std::vector<ir::StmtPtr> innerBody = std::move(nest[depth - 1]->body);
  for (std::size_t l = depth; l-- > 0;) {
    const ir::Loop& orig = *nest[l];
    ir::Loop point;
    point.iv = orig.iv;
    point.lower = ir::AffineExpr::var(orig.iv + "_t");
    point.upper =
        ir::Bound(ir::AffineExpr::var(orig.iv + "_t") + sizes[l],
                  orig.upper.base);
    point.step = 1;
    point.body = std::move(innerBody);
    innerBody.clear();
    innerBody.push_back(ir::Stmt::makeLoop(std::move(point)));
  }

  // Build tile loops outside-in around the point loops.
  for (std::size_t l = depth; l-- > 0;) {
    const ir::Loop& orig = *nest[l];
    ir::Loop tileLoop;
    tileLoop.iv = orig.iv + "_t";
    tileLoop.lower = orig.lower;
    tileLoop.upper = orig.upper;
    tileLoop.step = sizes[l];
    tileLoop.body = std::move(innerBody);
    innerBody.clear();
    innerBody.push_back(ir::Stmt::makeLoop(std::move(tileLoop)));
  }

  out.body = std::move(innerBody);
  out.name = p.name;
  return out;
}

ir::Program parallelizeOuter(const ir::Program& p, int collapse) {
  MOTUNE_CHECK(collapse >= 1);
  ir::Program out = p.clone();
  std::vector<ir::Loop*> nest = mutablePerfectNest(out);
  MOTUNE_CHECK_MSG(static_cast<std::size_t>(collapse) <= nest.size(),
                   "collapse depth exceeds the perfect nest depth");
  nest.front()->parallel = true;
  nest.front()->collapse = collapse;
  return out;
}

ir::Program interchange(const ir::Program& p, std::span<const int> perm) {
  const std::size_t depth = perm.size();
  ir::Program out = p.clone();
  std::vector<ir::Loop*> nest = mutablePerfectNest(out);
  MOTUNE_CHECK(nest.size() >= depth);

  // Validate the permutation.
  std::vector<bool> seen(depth, false);
  for (int j : perm) {
    MOTUNE_CHECK(j >= 0 && static_cast<std::size_t>(j) < depth);
    MOTUNE_CHECK_MSG(!seen[static_cast<std::size_t>(j)],
                     "invalid permutation");
    seen[static_cast<std::size_t>(j)] = true;
  }

  // Snapshot headers, then rewrite in permuted order; bodies stay in place.
  struct Header {
    std::string iv;
    ir::AffineExpr lower;
    ir::Bound upper;
    std::int64_t step;
  };
  std::vector<Header> headers;
  headers.reserve(depth);
  for (std::size_t l = 0; l < depth; ++l)
    headers.push_back({nest[l]->iv, nest[l]->lower, nest[l]->upper,
                       nest[l]->step});
  for (std::size_t l = 0; l < depth; ++l) {
    const Header& h = headers[static_cast<std::size_t>(perm[l])];
    nest[l]->iv = h.iv;
    nest[l]->lower = h.lower;
    nest[l]->upper = h.upper;
    nest[l]->step = h.step;
  }
  return out;
}

ir::Program unrollInnermost(const ir::Program& p, int factor) {
  MOTUNE_CHECK(factor >= 1);
  ir::Program out = p.clone();
  if (factor == 1) return out;
  std::vector<ir::Loop*> nest = mutablePerfectNest(out);
  MOTUNE_CHECK_MSG(!nest.empty(), "no loop to unroll");
  ir::Loop* inner = nest.back();
  MOTUNE_CHECK_MSG(inner->step == 1, "unroll requires a unit-step loop");
  for (const auto& s : inner->body)
    MOTUNE_CHECK_MSG(s->kind == ir::Stmt::Kind::Assign,
                     "unroll target must be the innermost loop");

  // Substituting iv -> iv + offset into each replica.
  std::vector<ir::StmtPtr> unrolledBody;
  for (int u = 0; u < factor; ++u) {
    const ir::AffineExpr repl = ir::AffineExpr::var(inner->iv) + u;
    for (const auto& s : inner->body) {
      ir::Assign a = s->assign;
      for (auto& sub : a.subscripts) sub = sub.substitute(inner->iv, repl);
      a.rhs = a.rhs->substitute(inner->iv, repl);
      unrolledBody.push_back(ir::Stmt::makeAssign(std::move(a)));
    }
  }

  // The split point between the unrolled main loop and the remainder loop
  // must be exact, which requires compile-time-constant bounds (the IR has
  // no integer division). The main loop runs while iv + factor <= hi.
  MOTUNE_CHECK_MSG(inner->lower.isConstant() &&
                       inner->upper.base.isConstant() &&
                       !inner->upper.cap.has_value(),
                   "unrolling requires constant loop bounds");
  const std::int64_t lo = inner->lower.constantTerm();
  const std::int64_t hi = inner->upper.base.constantTerm();
  const std::int64_t trips = hi > lo ? hi - lo : 0;
  const std::int64_t covered = trips / factor * factor;

  ir::Loop remainder;
  remainder.iv = inner->iv;
  remainder.lower = ir::AffineExpr::constant(lo + covered);
  remainder.upper = inner->upper;
  remainder.step = 1;
  remainder.body = std::move(inner->body);

  ir::Loop main;
  main.iv = inner->iv;
  main.lower = inner->lower;
  main.upper = ir::AffineExpr::constant(lo + covered);
  main.step = factor;
  main.body = std::move(unrolledBody);

  ir::Loop* parent = nest.size() >= 2 ? nest[nest.size() - 2] : nullptr;
  std::vector<ir::StmtPtr> replacement;
  replacement.push_back(ir::Stmt::makeLoop(std::move(main)));
  replacement.push_back(ir::Stmt::makeLoop(std::move(remainder)));
  if (parent != nullptr) {
    parent->body = std::move(replacement);
  } else {
    out.body = std::move(replacement);
  }
  return out;
}

} // namespace motune::transform
