#include "runtime/adaptive.h"

#include "observe/metrics.h"
#include "runtime/scheduler.h"
#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::runtime {

namespace {

// Stable handles; look them up once instead of per decision.
observe::Counter& invocationsCounter() {
  static observe::Counter& c =
      observe::MetricsRegistry::global().counter("rt.adaptive.invocations");
  return c;
}
observe::Counter& switchesCounter() {
  static observe::Counter& c =
      observe::MetricsRegistry::global().counter("rt.adaptive.switches");
  return c;
}
observe::Counter& explorationsCounter() {
  static observe::Counter& c =
      observe::MetricsRegistry::global().counter("rt.adaptive.explorations");
  return c;
}
observe::Counter& contextShiftsCounter() {
  static observe::Counter& c =
      observe::MetricsRegistry::global().counter("rt.adaptive.context_shifts");
  return c;
}

} // namespace

int sizeBucketOf(std::int64_t size) {
  if (size < 2) return 0;
  int bucket = 0;
  std::uint64_t v = static_cast<std::uint64_t>(size);
  while (v >>= 1) ++bucket;
  return bucket;
}

std::uint64_t AdaptiveContext::key() const {
  // 16 bits of size bucket, 24 of threads, 24 of pressure — far beyond any
  // plausible value range, so distinct contexts never collide.
  return (static_cast<std::uint64_t>(static_cast<std::uint16_t>(sizeBucket))
          << 48) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              availableThreads) &
          0xffffffu)
          << 24) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(pressure)) &
          0xffffffu);
}

AdaptivePolicy::AdaptivePolicy(AdaptiveOptions options)
    : options_(options), rng_(options.seed) {
  MOTUNE_CHECK_MSG(options_.window > 0, "adaptive window must be positive");
  MOTUNE_CHECK_MSG(options_.epsilon >= 0.0 && options_.epsilon < 1.0,
                   "epsilon must be in [0, 1)");
  MOTUNE_CHECK_MSG(options_.switchMargin >= 0.0,
                   "switch margin must be non-negative");
  MOTUNE_CHECK_MSG(options_.warmupPulls > 0,
                   "warmup must measure every arm at least once");
  // Register every counter up front: a metrics dump from a run with zero
  // switches must show rt.adaptive.switches = 0, not omit the key.
  invocationsCounter();
  switchesCounter();
  explorationsCounter();
  contextShiftsCounter();
}

AdaptivePolicy::ContextState&
AdaptivePolicy::stateFor(const mv::VersionTable& table) {
  if (current_ == nullptr) current_ = &bank_[context_.key()];
  ContextState& state = *current_;
  if (state.arms.empty()) {
    state.arms.reserve(table.size());
    for (std::size_t i = 0; i < table.size(); ++i)
      state.arms.emplace_back(options_.window);
  }
  MOTUNE_CHECK_MSG(state.arms.size() == table.size(),
                   "version table resized under an adaptive policy");
  return state;
}

void AdaptivePolicy::refreshBest(ContextState& state, std::size_t updated) {
  const Arm& candidate = state.arms[updated];
  const Arm& incumbent = state.arms[state.best];
  if (incumbent.window.pushes() == 0 ||
      candidate.cachedMean < incumbent.cachedMean) {
    state.best = updated;
    return;
  }
  if (updated == state.best) {
    // The best arm's own mean moved (possibly up): rescan.  O(arms), only
    // when the incumbent is the arm that changed.
    std::size_t best = updated;
    for (std::size_t i = 0; i < state.arms.size(); ++i) {
      if (state.arms[i].window.pushes() == 0) continue;
      if (state.arms[i].cachedMean < state.arms[best].cachedMean) best = i;
    }
    state.best = best;
  }
}

std::size_t AdaptivePolicy::select(const mv::VersionTable& table) {
  MOTUNE_CHECK_MSG(!table.empty(), "adaptive select on empty table");
  ContextState& state = stateFor(table);
  ++decisions_;
  invocationsCounter().add();

  // Warmup: measure every arm warmupPulls times, round-robin, before any
  // exploitation in this context.
  if (!state.warmedUp) {
    const std::uint64_t target = options_.warmupPulls;
    for (std::size_t probe = 0; probe < state.arms.size(); ++probe) {
      const std::size_t arm =
          (state.warmupCursor + probe) % state.arms.size();
      if (state.arms[arm].window.pushes() < target) {
        state.warmupCursor = arm + 1;
        pending_ = arm;
        lastReason_ = SelectReason::Warmup;
        return arm;
      }
    }
    state.warmedUp = true;
    state.committed = state.best;
    state.dwell = 0;
  }

  ++state.dwell;

  // Exploration excursion (epsilon-greedy): measure a random non-committed
  // arm without moving the committed choice or resetting its dwell.
  if (options_.explore == ExploreKind::EpsilonGreedy &&
      options_.epsilon > 0.0 && table.size() > 1 &&
      rng_.uniform() < options_.epsilon) {
    std::size_t arm = static_cast<std::size_t>(rng_.uniformInt(
        0, static_cast<std::int64_t>(table.size()) - 2));
    if (arm >= state.committed) ++arm; // skip the committed arm
    ++explorations_;
    explorationsCounter().add();
    pending_ = arm;
    lastReason_ = SelectReason::Explore;
    return arm;
  }

  // Candidate: lowest windowed mean, optionally decorated with a UCB
  // optimism bonus that favours under-sampled arms.
  std::size_t candidate = state.best;
  if (options_.explore == ExploreKind::Ucb && table.size() > 1) {
    const double total = static_cast<double>(state.dwell + table.size());
    double bestScore = 0.0;
    bool first = true;
    for (std::size_t i = 0; i < state.arms.size(); ++i) {
      const Arm& arm = state.arms[i];
      if (arm.window.pushes() == 0) continue;
      const double pulls = static_cast<double>(
          std::min<std::uint64_t>(arm.window.pushes(), options_.window));
      const double bonus =
          options_.ucbC * std::sqrt(std::log(total) / pulls);
      const double score = arm.cachedMean * (1.0 - bonus);
      if (first || score < bestScore) {
        bestScore = score;
        candidate = i;
        first = false;
      }
    }
    if (candidate != state.best && candidate != state.committed) {
      ++explorations_;
      explorationsCounter().add();
      pending_ = candidate;
      lastReason_ = SelectReason::Explore;
      return candidate;
    }
    candidate = state.best;
  }

  // Hysteresis: switch the committed arm only after minDwell decisions and
  // only for a relative improvement beyond switchMargin.
  if (candidate != state.committed && state.dwell >= options_.minDwell) {
    const double incumbent = state.arms[state.committed].cachedMean;
    const double challenger = state.arms[candidate].cachedMean;
    if (challenger < incumbent * (1.0 - options_.switchMargin)) {
      state.committed = candidate;
      state.dwell = 0;
      ++switches_;
      switchesCounter().add();
      pending_ = candidate;
      lastReason_ = SelectReason::Switch;
      return candidate;
    }
  }

  pending_ = state.committed;
  lastReason_ = SelectReason::Hold;
  return state.committed;
}

void AdaptivePolicy::onMeasured(std::size_t index, double seconds) {
  if (current_ == nullptr) return; // feedback before any select(): ignore
  ContextState& state = *current_;
  if (index >= state.arms.size()) return;
  Arm& arm = state.arms[index];
  arm.window.push(seconds);
  arm.cachedMean = arm.window.mean();
  refreshBest(state, index);
}

void AdaptivePolicy::setContext(const AdaptiveContext& context) {
  if (current_ != nullptr && context == context_) return;
  const bool shifted = current_ != nullptr;
  context_ = context;
  current_ = &bank_[context_.key()];
  if (shifted) {
    ++contextShifts_;
    contextShiftsCounter().add();
  }
}

std::size_t AdaptivePolicy::committedArm() const {
  if (current_ == nullptr) return 0;
  return current_->warmedUp ? current_->committed : current_->best;
}

std::vector<ArmSnapshot> AdaptivePolicy::armStats() const {
  std::vector<ArmSnapshot> out;
  if (current_ == nullptr) return out;
  out.reserve(current_->arms.size());
  for (const Arm& arm : current_->arms) {
    ArmSnapshot snap;
    snap.pulls = arm.window.pushes();
    snap.mean = arm.window.pushes() > 0 ? arm.cachedMean : 0.0;
    out.push_back(snap);
  }
  return out;
}

int coScheduledPressure(const std::vector<Placement>& placements,
                        std::size_t selfRegion) {
  int pressure = 0;
  for (const Placement& p : placements)
    if (p.regionIndex != selfRegion) pressure += p.threads;
  return pressure;
}

} // namespace motune::runtime
