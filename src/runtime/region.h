// Region dispatcher: the runtime-system component that intercepts region
// invocations and routes them to a version of the multi-version table
// (paper §IV: "We delegate the invocation of each outlined region function
// to the runtime system. The runtime then selects an adequate version from
// the global table.").
#pragma once

#include "multiversion/version_table.h"
#include "runtime/policy.h"

#include <cstdint>
#include <vector>

namespace motune::runtime {

/// A tunable code region at run time: owns the version table and records
/// which versions were chosen (monitoring hook for schedulers / reports).
class Region {
public:
  explicit Region(mv::VersionTable table);

  /// Selects a version with `policy`, executes it, feeds the measured wall
  /// time back through SelectionPolicy::onMeasured (adaptive policies fold
  /// it into their model), and returns the index of the version that ran.
  std::size_t invoke(SelectionPolicy& policy);

  /// Executes a specific version (e.g. a scheduler made the decision).
  /// Returns the measured wall time in seconds.
  double invokeVersion(std::size_t index);

  const mv::VersionTable& table() const { return table_; }

  /// Invocation count per version index, in table order.
  const std::vector<std::uint64_t>& invocationCounts() const {
    return counts_;
  }
  std::uint64_t totalInvocations() const;

private:
  mv::VersionTable table_;
  std::vector<std::uint64_t> counts_;
};

} // namespace motune::runtime
