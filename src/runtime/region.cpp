#include "runtime/region.h"

#include "observe/metrics.h"
#include "observe/ring.h"
#include "observe/trace.h"
#include "support/check.h"

#include <chrono>
#include <numeric>

namespace motune::runtime {

Region::Region(mv::VersionTable table)
    : table_(std::move(table)), counts_(table_.size(), 0) {
  MOTUNE_CHECK_MSG(!table_.empty(), "region needs at least one version");
}

std::size_t Region::invoke(SelectionPolicy& policy) {
  const std::size_t index = policy.select(table_);
  // Record the version-selection decision itself (which policy picked
  // which version), not just the execution below.
  observe::Tracer& tracer = observe::Tracer::global();
  if (tracer.enabled())
    tracer.event(
        "region.select",
        {{"policy", support::Json(policy.name())},
         {"version", support::Json(index)},
         {"threads", support::Json(table_[index].meta.threads)},
         {"est_seconds", support::Json(table_[index].meta.timeSeconds)}});
  const double seconds = invokeVersion(index);
  policy.onMeasured(index, seconds);
  return index;
}

double Region::invokeVersion(std::size_t index) {
  MOTUNE_CHECK(index < table_.size());
  const mv::CodeVersion& version = table_[index];
  MOTUNE_CHECK_MSG(version.run != nullptr, "version has no executable body");
  // Ring events report to the process tracer that owns the rings.
  observe::Tracer& tracer = observe::Tracer::process();
  const bool traced = tracer.enabled(); // one relaxed load when disabled
  const double traceStart = traced ? tracer.now() : 0.0;
  const auto begin = std::chrono::steady_clock::now();
  version.run(version.meta.threads);
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count();
  ++counts_[index];
  // Handles are stable; look them up once instead of per invocation.
  static observe::Counter& invocations =
      observe::MetricsRegistry::global().counter("runtime.region.invocations");
  static observe::Histogram& timing =
      observe::MetricsRegistry::global().histogram("runtime.region.seconds");
  invocations.add();
  timing.observe(seconds);
  if (traced) {
    // Region executions ride the per-thread ring (drained at trace flush
    // as "rt.region" spans with tid), not the locked sink path.
    observe::RuntimeEvent event;
    event.kind = observe::RuntimeEvent::Kind::RegionInvoke;
    event.start = traceStart;
    event.duration = seconds;
    event.arg0 = static_cast<std::int64_t>(index);
    event.arg1 = version.meta.threads;
    observe::RuntimeLog::global().ring().tryPush(event);
  }
  return seconds;
}

std::uint64_t Region::totalInvocations() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

} // namespace motune::runtime
