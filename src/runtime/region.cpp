#include "runtime/region.h"

#include "support/check.h"

#include <numeric>

namespace motune::runtime {

Region::Region(mv::VersionTable table)
    : table_(std::move(table)), counts_(table_.size(), 0) {
  MOTUNE_CHECK_MSG(!table_.empty(), "region needs at least one version");
}

std::size_t Region::invoke(const SelectionPolicy& policy) {
  const std::size_t index = policy.select(table_);
  invokeVersion(index);
  return index;
}

void Region::invokeVersion(std::size_t index) {
  MOTUNE_CHECK(index < table_.size());
  const mv::CodeVersion& version = table_[index];
  MOTUNE_CHECK_MSG(version.run != nullptr, "version has no executable body");
  version.run(version.meta.threads);
  ++counts_[index];
}

std::uint64_t Region::totalInvocations() const {
  return std::accumulate(counts_.begin(), counts_.end(), std::uint64_t{0});
}

} // namespace motune::runtime
