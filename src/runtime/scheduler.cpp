#include "runtime/scheduler.h"

#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"

#include <algorithm>
#include <limits>

namespace motune::runtime {

namespace {

/// Index of the region's version with minimal resource usage whose thread
/// count is minimal among ties (the cheapest admission).
std::size_t cheapestVersion(const mv::VersionTable& table) {
  std::size_t best = 0;
  for (std::size_t v = 1; v < table.size(); ++v) {
    const auto& cand = table[v].meta;
    const auto& cur = table[best].meta;
    if (cand.resources < cur.resources ||
        (cand.resources == cur.resources && cand.threads < cur.threads))
      best = v;
  }
  return best;
}

} // namespace

MultiRegionScheduler::MultiRegionScheduler(
    std::vector<const mv::VersionTable*> regions, int coreBudget,
    SchedulingGoal goal)
    : regions_(std::move(regions)), coreBudget_(coreBudget), goal_(goal) {
  MOTUNE_CHECK(coreBudget_ >= 1);
  for (const auto* r : regions_) {
    MOTUNE_CHECK(r != nullptr);
    MOTUNE_CHECK(!r->empty());
  }
}

std::vector<Placement> MultiRegionScheduler::schedule() const {
  observe::Span span = observe::Tracer::global().span(
      "scheduler.schedule",
      {{"regions", support::Json(regions_.size())},
       {"core_budget", support::Json(coreBudget_)},
       {"goal", support::Json(goal_ == SchedulingGoal::MinimizeMakespan
                                  ? "makespan"
                                  : "resources")}});
  std::vector<Placement> placements;
  placements.reserve(regions_.size());
  for (std::size_t r = 0; r < regions_.size(); ++r) {
    const std::size_t v = cheapestVersion(*regions_[r]);
    const auto& meta = (*regions_[r])[v].meta;
    placements.push_back({r, v, meta.threads, meta.timeSeconds});
  }
  if (regions_.empty()) return placements;

  // Greedy upgrades while the budget allows.
  for (;;) {
    const int used = totalThreads(placements);
    const int slack = coreBudget_ - used;
    if (slack <= 0) break;

    // Candidate upgrade per region: the next version (by ascending time)
    // that is strictly faster and fits the slack.
    double bestGain = 0.0;
    std::size_t bestRegion = regions_.size();
    std::size_t bestVersion = 0;
    const double msBefore = makespan(placements);
    for (std::size_t r = 0; r < regions_.size(); ++r) {
      const mv::VersionTable& table = *regions_[r];
      const Placement& cur = placements[r];
      for (std::size_t v = 0; v < table.size(); ++v) {
        const auto& meta = table[v].meta;
        if (meta.timeSeconds >= cur.estSeconds) continue; // not an upgrade
        const int extra = meta.threads - cur.threads;
        if (extra > slack) continue;

        double gain = 0.0;
        if (goal_ == SchedulingGoal::MinimizeMakespan) {
          // Improvement of the global makespan (only upgrades of the
          // currently slowest regions move it, which the max reflects).
          std::vector<Placement> trial = placements;
          trial[r] = {r, v, meta.threads, meta.timeSeconds};
          gain = msBefore - makespan(trial);
        } else {
          gain = cur.estSeconds * cur.threads -
                 meta.timeSeconds * meta.threads;
        }
        const double perCore = extra > 0 ? gain / extra : gain * 2.0;
        if (perCore > bestGain + 1e-15) {
          bestGain = perCore;
          bestRegion = r;
          bestVersion = v;
        }
      }
    }
    if (bestRegion == regions_.size()) break; // no profitable upgrade

    const auto& meta = (*regions_[bestRegion])[bestVersion].meta;
    placements[bestRegion] = {bestRegion, bestVersion, meta.threads,
                              meta.timeSeconds};
  }

  observe::MetricsRegistry::global().counter("scheduler.schedules").add();
  if (span.active()) {
    support::JsonArray chosen;
    for (const auto& p : placements)
      chosen.push_back(support::Json(support::JsonObject{
          {"region", support::Json(p.regionIndex)},
          {"version", support::Json(p.versionIndex)},
          {"threads", support::Json(p.threads)},
          {"est_seconds", support::Json(p.estSeconds)}}));
    span.setAttr("placements", support::Json(std::move(chosen)));
    span.setAttr("total_threads", support::Json(totalThreads(placements)));
    span.setAttr("makespan", support::Json(makespan(placements)));
    span.setAttr("total_resources",
                 support::Json(totalResources(placements)));
  }
  return placements;
}

int MultiRegionScheduler::totalThreads(
    const std::vector<Placement>& placements) {
  int total = 0;
  for (const auto& p : placements) total += p.threads;
  return total;
}

double MultiRegionScheduler::makespan(
    const std::vector<Placement>& placements) {
  double ms = 0.0;
  for (const auto& p : placements) ms = std::max(ms, p.estSeconds);
  return ms;
}

double MultiRegionScheduler::totalResources(
    const std::vector<Placement>& placements) {
  double total = 0.0;
  for (const auto& p : placements)
    total += p.estSeconds * static_cast<double>(p.threads);
  return total;
}

} // namespace motune::runtime
