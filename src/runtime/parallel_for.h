// Work-sharing parallel loop over an index range — the `#pragma omp
// parallel for schedule(static)` equivalent of the Insieme-runtime
// substitute. Kernels invoke it with the thread count selected by the
// version table, so a multi-versioned region really executes with the
// parallelism its metadata promises.
#pragma once

#include "runtime/thread_pool.h"

#include <cstdint>
#include <functional>

namespace motune::runtime {

/// Executes fn(i) for i in [begin, end) using `threads` logical threads with
/// static chunking (contiguous blocks, as OpenMP schedule(static) does).
/// Blocks until all iterations complete. threads <= 1 runs inline.
void parallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 int threads, const std::function<void(std::int64_t)>& fn);

/// Block variant: fn(chunkBegin, chunkEnd) per static chunk; lower overhead
/// for fine-grained iterations (each worker gets one contiguous block).
void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end, int threads,
    const std::function<void(std::int64_t, std::int64_t)>& fn);

} // namespace motune::runtime
