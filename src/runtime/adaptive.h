#pragma once
// Online adaptive version selection (ROADMAP: "online adaptive runtime
// selection under live traffic").
//
// The offline tuner (paper §III) leaves a Pareto table of code versions;
// the paper's runtime (§IV, Fig. 3 label 6) picks among them with *static*
// policies driven by the tuning-time measurements.  AdaptivePolicy closes
// the loop at run time: it treats the table's versions as bandit arms,
// keeps a sliding window of *measured* cost per arm (mv::ObservedCost),
// and picks the arm with the lowest windowed mean — with seeded
// deterministic exploration (epsilon-greedy or UCB) so a drifting
// environment is re-probed, and hysteresis (minimum dwell + relative
// switch margin) so selection never thrashes between near-equal arms.
//
// Context: the observable environment (input size bucket, available
// threads, co-scheduled pressure) keys a separate bank of arm statistics.
// A context shift re-enters warmup for unseen contexts and instantly
// resumes learned statistics for previously seen ones.
//
// Everything is deterministic given (options.seed, context sequence,
// measured-cost sequence): the only randomness is the policy's own
// xoshiro stream.  The traffic replay harness (runtime/traffic.h) drives
// this property into a bit-reproducibility gate.

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "multiversion/observed.h"
#include "runtime/policy.h"
#include "support/rng.h"

namespace motune::runtime {

/// What the selector can observe about the world at one invocation.
struct AdaptiveContext {
  int sizeBucket = 0;       ///< floor(log2(problem size)); see sizeBucketOf
  int availableThreads = 0; ///< cores currently usable (0 = unconstrained)
  int pressure = 0;         ///< threads demanded by co-scheduled regions

  friend bool operator==(const AdaptiveContext&,
                         const AdaptiveContext&) = default;
  /// Stable packed key for the per-context statistics bank.
  std::uint64_t key() const;
};

/// Bucket a problem size for context keying: floor(log2(max(1, size))).
int sizeBucketOf(std::int64_t size);

enum class ExploreKind { EpsilonGreedy, Ucb };

struct AdaptiveOptions {
  std::uint64_t seed = 1;
  std::size_t window = 32;   ///< sliding-window samples kept per arm
  double epsilon = 0.02;     ///< exploration rate (EpsilonGreedy)
  double ucbC = 0.5;         ///< optimism coefficient (Ucb)
  ExploreKind explore = ExploreKind::EpsilonGreedy;
  std::uint64_t minDwell = 32; ///< invocations between committed switches
  double switchMargin = 0.05;  ///< relative gain required to switch
  std::size_t warmupPulls = 1; ///< measurements per arm before exploiting
};

/// Why the last select() picked what it picked (exposed for tests/logs).
enum class SelectReason { Warmup, Hold, Switch, Explore };

/// Snapshot of one arm's statistics in the current context.
struct ArmSnapshot {
  std::uint64_t pulls = 0; ///< lifetime measurements for this (context, arm)
  double mean = 0.0;       ///< windowed mean cost; 0 when never pulled
};

class AdaptivePolicy final : public SelectionPolicy {
public:
  explicit AdaptivePolicy(AdaptiveOptions options = {});

  std::size_t select(const mv::VersionTable& table) override;
  void onMeasured(std::size_t index, double seconds) override;
  std::string name() const override { return "adaptive"; }

  /// Declare the observed context for subsequent invocations.  A shift to
  /// an unseen context re-enters warmup; a return to a seen context
  /// resumes its learned statistics.
  void setContext(const AdaptiveContext& context);
  const AdaptiveContext& context() const { return context_; }

  const AdaptiveOptions& options() const { return options_; }

  // Introspection (cheap; used by tests, benches, and the replay log).
  std::uint64_t decisions() const { return decisions_; }
  std::uint64_t switches() const { return switches_; }
  std::uint64_t explorations() const { return explorations_; }
  std::uint64_t contextShifts() const { return contextShifts_; }
  std::size_t committedArm() const;
  SelectReason lastReason() const { return lastReason_; }
  /// Arm statistics for the current context (empty before first select).
  std::vector<ArmSnapshot> armStats() const;

private:
  struct Arm {
    explicit Arm(std::size_t capacity) : window(capacity) {}
    mv::ObservedCost window;
    double cachedMean = 0.0; ///< window.mean(), maintained on push
  };

  struct ContextState {
    std::vector<Arm> arms;
    std::size_t committed = 0;   ///< arm exploitation returns to
    std::size_t best = 0;        ///< argmin of cachedMean over pulled arms
    std::uint64_t dwell = 0;     ///< decisions since the last switch
    std::size_t warmupCursor = 0;
    bool warmedUp = false;
  };

  ContextState& stateFor(const mv::VersionTable& table);
  void refreshBest(ContextState& state, std::size_t updated);

  AdaptiveOptions options_;
  support::Rng rng_;
  AdaptiveContext context_;
  std::map<std::uint64_t, ContextState> bank_;
  ContextState* current_ = nullptr; ///< bank_[context_.key()], cached
  std::size_t pending_ = 0;         ///< arm returned by the last select()
  SelectReason lastReason_ = SelectReason::Warmup;
  std::uint64_t decisions_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t explorations_ = 0;
  std::uint64_t contextShifts_ = 0;
};

/// Co-scheduled pressure on `selfRegion` implied by a scheduler placement:
/// the threads every *other* region was granted.  Feed it into
/// AdaptiveContext::pressure so a region's selector sees its neighbours.
struct Placement; // scheduler.h
int coScheduledPressure(const std::vector<Placement>& placements,
                        std::size_t selfRegion);

} // namespace motune::runtime
