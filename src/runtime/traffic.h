#pragma once
// Deterministic synthetic traffic for the adaptive runtime.
//
// A TrafficSpec describes a sequence of workload phases — each phase fixes
// an invocation count, a problem-size ramp, the threads the machine has
// left over, and the co-scheduled pressure — plus a synthetic cost model
// that maps a tuned VersionMeta onto the cost it would exhibit under that
// phase's conditions.  replayTraffic() then drives millions of region
// invocations through an AdaptivePolicy, charging it the modelled cost of
// whichever arm it picks, and compares the cumulative bill against the
// best *static* arm per phase in hindsight and against the per-invocation
// oracle.
//
// Everything is a pure function of (spec, seed): measurement noise is
// counter-based — hashed from (seed, invocation index, arm) — so the noise
// an arm would see does not depend on which arms were picked before it,
// and the selection log is byte-identical across reruns, thread-pool
// sizes, and platforms.
//
// Spec text grammar (one directive per line, '#' comments):
//
//   seed 42
//   ref-size 4096
//   fork-cost 2e-4
//   oversub-penalty 1.6
//   work-exponent 1.0
//   default-threads 16
//   phase name=warm invocations=2000 size=4096 threads=16 pressure=0 noise=0.05
//   phase name=drop invocations=2000 size=4096..1024 threads=4
//
// `size=A..B` ramps geometrically from A to B across the phase.  Omitted
// phase fields keep their defaults (threads=0 means "default-threads").

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "multiversion/version_table.h"
#include "runtime/adaptive.h"

namespace motune::runtime {

struct TrafficPhase {
  std::string name = "phase";
  std::uint64_t invocations = 1000;
  std::int64_t sizeLo = 4096; ///< problem size at the phase's first invocation
  std::int64_t sizeHi = 4096; ///< ... and at its last (geometric ramp between)
  int availableThreads = 0;   ///< 0 = the spec's default-threads
  int pressure = 0;           ///< co-scheduled thread demand
  double noise = 0.0;         ///< relative measurement noise amplitude

  friend bool operator==(const TrafficPhase&, const TrafficPhase&) = default;
};

struct TrafficSpec {
  std::uint64_t seed = 1;
  std::int64_t refSize = 4096;  ///< size the table's timeSeconds was tuned at
  double forkCost = 2e-4;       ///< per-extra-thread spawn overhead (seconds)
  double oversubPenalty = 1.6;  ///< cost multiplier when threads > usable
  double workExponent = 1.0;    ///< work ~ (size / refSize) ^ exponent
  int defaultThreads = 16;
  std::vector<TrafficPhase> phases;

  std::uint64_t totalInvocations() const;
  /// Proportionally rescale the phase lengths to ~total invocations
  /// (each phase keeps at least one invocation).
  void scaleTo(std::uint64_t total);

  friend bool operator==(const TrafficSpec&, const TrafficSpec&) = default;
};

/// Parses the spec grammar above.  Throws support::CheckError on unknown
/// directives, malformed values, or a spec with no phases.
TrafficSpec parseTrafficSpec(const std::string& text);

/// Renders a spec back into the grammar; parse(print(s)) == s.
std::string printTrafficSpec(const TrafficSpec& spec);

/// Names of the built-in scenarios: steady, size-ramp, thread-drop,
/// pressure-burst, mix.
std::vector<std::string> builtinScenarioNames();

/// A built-in phase-changing scenario by name, reseeded with `seed`.
/// Throws support::CheckError for an unknown name.
TrafficSpec builtinScenario(const std::string& name, std::uint64_t seed);

/// One invocation's observable conditions, decoded from the spec.
struct TrafficPoint {
  std::uint64_t index = 0;  ///< global invocation index
  std::size_t phase = 0;    ///< phase ordinal
  std::int64_t size = 0;    ///< problem size at this invocation
  int availableThreads = 0; ///< resolved (never 0)
  int pressure = 0;
};

/// Random-access decoder for a spec: invocation index -> conditions and
/// per-arm modelled costs.  Stateless after construction; all methods are
/// const and thread-safe.
class TrafficGenerator {
public:
  explicit TrafficGenerator(TrafficSpec spec);

  const TrafficSpec& spec() const { return spec_; }
  std::uint64_t total() const { return total_; }

  TrafficPoint at(std::uint64_t index) const;
  AdaptiveContext contextOf(const TrafficPoint& point) const;

  /// Noise-free modelled cost of running `meta` under `point`.
  double trueCost(const mv::VersionMeta& meta, const TrafficPoint& point) const;

  /// trueCost with deterministic multiplicative measurement noise drawn
  /// from hash(seed, point.index, arm) — independent of selection history.
  double observedCost(const mv::VersionMeta& meta, const TrafficPoint& point,
                      std::size_t arm) const;

private:
  TrafficSpec spec_;
  std::vector<std::uint64_t> phaseStart_; ///< cumulative invocation offsets
  std::uint64_t total_ = 0;
};

/// Per-phase replay outcome: the adaptive bill vs. the hindsight-best
/// static arm held for the whole phase.
struct PhaseOutcome {
  std::string name;
  std::uint64_t invocations = 0;
  double adaptiveCost = 0.0;
  double bestStaticCost = 0.0;
  std::size_t bestStaticArm = 0;
  std::uint64_t switches = 0;     ///< committed switches during the phase
  std::uint64_t explorations = 0; ///< exploration excursions during the phase
};

struct ReplayOutcome {
  std::vector<PhaseOutcome> phases;
  double adaptiveCost = 0.0;
  double bestStaticCost = 0.0; ///< sum of per-phase hindsight-best bills
  double oracleCost = 0.0;     ///< per-invocation best arm (lower bound)
  std::uint64_t invocations = 0;
  std::uint64_t switches = 0;
  std::uint64_t explorations = 0;
  std::uint64_t contextShifts = 0;
  std::vector<std::uint64_t> selectionCounts; ///< per arm, whole replay

  /// bestStaticCost / adaptiveCost — 1.0 means "as good as the hindsight
  /// best static schedule"; the scenario gates assert >= 0.9.
  double convergenceRatio() const;
};

struct ReplayOptions {
  /// Stream for the JSONL selection log (replay.header / replay.phase /
  /// replay.switch / replay.summary records).  Null disables logging.
  std::ostream* log = nullptr;
  /// Execute the table's run bodies for real (replay decisions are still
  /// driven purely by modelled costs, so logs stay bit-identical — this
  /// exercises the policy under genuine concurrent execution).
  bool execute = false;
  /// Label written into the replay.header `scenario` attribute.
  std::string scenario = "custom";
};

/// Drive `policy` through every invocation of `spec` over `table`.
ReplayOutcome replayTraffic(const TrafficSpec& spec,
                            const mv::VersionTable& table,
                            AdaptivePolicy& policy,
                            const ReplayOptions& options = {});

/// Deterministic Pareto-shaped table of `versions` arms for replay tests
/// and benches: thread counts descend from `maxThreads`, times ascend, and
/// parallel versions carry realistic waste (total work above serial).
mv::VersionTable syntheticTable(std::size_t versions, std::uint64_t seed,
                                int maxThreads = 32);

} // namespace motune::runtime
