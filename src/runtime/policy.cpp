#include "runtime/policy.h"

#include "support/check.h"

#include <limits>

namespace motune::runtime {

double serialReference(const mv::VersionTable& table) {
  MOTUNE_CHECK(!table.empty());
  for (std::size_t i = 0; i < table.size(); ++i)
    if (table[i].meta.threads == 1) return table[i].meta.timeSeconds;
  return table.resourceRange().first;
}

WeightedSumPolicy::WeightedSumPolicy(double timeWeight, double resourceWeight)
    : wTime_(timeWeight), wRes_(resourceWeight) {
  MOTUNE_CHECK(timeWeight >= 0.0 && resourceWeight >= 0.0);
  MOTUNE_CHECK(timeWeight + resourceWeight > 0.0);
}

std::size_t WeightedSumPolicy::select(const mv::VersionTable& table) {
  MOTUNE_CHECK(!table.empty());
  const auto [tLo, tHi] = table.timeRange();
  const auto [rLo, rHi] = table.resourceRange();
  const double tSpan = tHi > tLo ? tHi - tLo : 1.0;
  const double rSpan = rHi > rLo ? rHi - rLo : 1.0;

  std::size_t best = 0;
  double bestScore = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& m = table[i].meta;
    const double score = wTime_ * (m.timeSeconds - tLo) / tSpan +
                         wRes_ * (m.resources - rLo) / rSpan;
    if (score < bestScore) {
      bestScore = score;
      best = i;
    }
  }
  return best;
}

TimeBudgetPolicy::TimeBudgetPolicy(double budgetSeconds) : budget_(budgetSeconds) {
  MOTUNE_CHECK(budgetSeconds > 0.0);
}

std::size_t TimeBudgetPolicy::select(const mv::VersionTable& table) {
  MOTUNE_CHECK(!table.empty());
  std::size_t best = table.fastest();
  bool found = false;
  double bestResources = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& m = table[i].meta;
    if (m.timeSeconds <= budget_ && m.resources < bestResources) {
      bestResources = m.resources;
      best = i;
      found = true;
    }
  }
  return found ? best : table.fastest();
}

EfficiencyFloorPolicy::EfficiencyFloorPolicy(double minEfficiency,
                                             std::optional<double> serialSeconds)
    : minEfficiency_(minEfficiency), serialSeconds_(serialSeconds) {
  MOTUNE_CHECK(minEfficiency > 0.0 && minEfficiency <= 1.0);
}

std::size_t EfficiencyFloorPolicy::select(const mv::VersionTable& table) {
  MOTUNE_CHECK(!table.empty());
  const double serial = serialSeconds_.value_or(serialReference(table));
  std::size_t best = table.mostEfficient();
  double bestTime = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& m = table[i].meta;
    if (m.efficiency(serial) >= minEfficiency_ && m.timeSeconds < bestTime) {
      bestTime = m.timeSeconds;
      best = i;
      found = true;
    }
  }
  return found ? best : table.mostEfficient();
}

ThreadCapPolicy::ThreadCapPolicy(int maxThreads) : maxThreads_(maxThreads) {
  MOTUNE_CHECK(maxThreads >= 1);
}

std::size_t ThreadCapPolicy::select(const mv::VersionTable& table) {
  MOTUNE_CHECK(!table.empty());
  std::size_t best = 0;
  double bestTime = std::numeric_limits<double>::infinity();
  bool found = false;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto& m = table[i].meta;
    if (m.threads <= maxThreads_ && m.timeSeconds < bestTime) {
      bestTime = m.timeSeconds;
      best = i;
      found = true;
    }
  }
  // No version fits the cap (all tuned for more threads): run the most
  // efficient one, which by construction uses the fewest resources.
  return found ? best : table.mostEfficient();
}

} // namespace motune::runtime
