// Runtime version-selection policies (paper Fig. 3 label 6, §IV).
//
// "The actual policy for selecting code versions is dynamically
// configurable. For instance, a user may supply weights w_c for each
// component c of the objective function f; the runtime system then ...
// selects the version v from the Pareto set S which minimizes
// sum_c w_c * f_c(v)." Beyond that weighted-sum policy, this module
// provides the context-driven policies the paper sketches (system-wide
// performance settings, schedulers reacting to available resources).
#pragma once

#include "multiversion/version_table.h"

#include <cstddef>
#include <memory>
#include <optional>
#include <string>

namespace motune::runtime {

/// Strategy interface: picks the version of a table to execute.
///
/// select() is non-const: adaptive policies fold every decision into an
/// internal model (stateless policies simply ignore the latitude).  After
/// the chosen version runs, the region feeds the measured wall time back
/// through onMeasured(), closing the measure -> model -> select loop.
class SelectionPolicy {
public:
  virtual ~SelectionPolicy() = default;
  virtual std::size_t select(const mv::VersionTable& table) = 0;
  /// Runtime feedback: version `index` just ran in `seconds`.  Default
  /// no-op keeps the static policies oblivious.
  virtual void onMeasured(std::size_t index, double seconds) {
    (void)index;
    (void)seconds;
  }
  virtual std::string name() const = 0;
};

/// The paper's example policy: minimize w_time * t + w_res * r over the
/// table, with both objectives min-max normalized so the weights express a
/// pure preference (weights need not sum to 1).
class WeightedSumPolicy final : public SelectionPolicy {
public:
  WeightedSumPolicy(double timeWeight, double resourceWeight);
  std::size_t select(const mv::VersionTable& table) override;
  std::string name() const override { return "weighted-sum"; }

private:
  double wTime_;
  double wRes_;
};

/// Picks the most resource-efficient version meeting a wall-clock budget;
/// falls back to the fastest version when no version meets it.
class TimeBudgetPolicy final : public SelectionPolicy {
public:
  explicit TimeBudgetPolicy(double budgetSeconds);
  std::size_t select(const mv::VersionTable& table) override;
  std::string name() const override { return "time-budget"; }

private:
  double budget_;
};

/// Picks the fastest version whose parallel efficiency (relative to the
/// table's serial point or a supplied serial reference) stays above a
/// floor — the "system-wide performance setting" scenario: an operator
/// caps acceptable waste.
class EfficiencyFloorPolicy final : public SelectionPolicy {
public:
  EfficiencyFloorPolicy(double minEfficiency,
                        std::optional<double> serialSeconds = std::nullopt);
  std::size_t select(const mv::VersionTable& table) override;
  std::string name() const override { return "efficiency-floor"; }

private:
  double minEfficiency_;
  std::optional<double> serialSeconds_;
};

/// Picks the fastest version not exceeding the currently available core
/// count — a dynamic scheduler adapting to external load.
class ThreadCapPolicy final : public SelectionPolicy {
public:
  explicit ThreadCapPolicy(int maxThreads);
  std::size_t select(const mv::VersionTable& table) override;
  std::string name() const override { return "thread-cap"; }

private:
  int maxThreads_;
};

/// Serial reference time of a table: the time of its single-threaded
/// version if present, otherwise the minimal resource value (which equals
/// the serial time when the serial point is Pareto-optimal).
double serialReference(const mv::VersionTable& table);

} // namespace motune::runtime
