// Multi-region scheduler: the paper's outlook made concrete.
//
// "In more sophisticated scenarios, dynamic or static task schedulers
// could be extended to exploit this additional flexibility to improve
// their own (potentially multi-objective) quality of service" (§III.A).
// This scheduler manages several multi-versioned regions competing for one
// machine's cores: given the set of regions that want to run, it assigns
// each a version such that the total thread demand fits the core budget,
// trading per-region speed against overall throughput.
#pragma once

#include "multiversion/version_table.h"

#include <cstdint>
#include <string>
#include <vector>

namespace motune::runtime {

/// One admitted region with the version the scheduler chose for it.
struct Placement {
  std::size_t regionIndex = 0;
  std::size_t versionIndex = 0;
  int threads = 0;
  double estSeconds = 0.0;
};

/// How the scheduler values an assignment.
enum class SchedulingGoal {
  MinimizeMakespan, ///< minimize the slowest region's estimated time
  MinimizeTotalResources, ///< minimize sum of threads x time
};

/// Assigns one version per region so total threads <= coreBudget.
///
/// Strategy: start every region at its most resource-efficient version;
/// while budget remains, greedily upgrade the region whose upgrade yields
/// the best improvement of the goal per extra core (a classic marginal-
/// utility heuristic — optimal for the convex per-region trade-off curves
/// Pareto fronts provide). Regions that cannot fit even at one thread are
/// still admitted serially (budget is a soft cap for the last region).
class MultiRegionScheduler {
public:
  MultiRegionScheduler(std::vector<const mv::VersionTable*> regions,
                       int coreBudget,
                       SchedulingGoal goal = SchedulingGoal::MinimizeMakespan);

  /// Computes the assignment (deterministic).
  std::vector<Placement> schedule() const;

  /// Sum of assigned threads for a given assignment.
  static int totalThreads(const std::vector<Placement>& placements);

  /// Estimated makespan (max region time) of an assignment, assuming the
  /// regions run concurrently on disjoint cores.
  static double makespan(const std::vector<Placement>& placements);

  /// Total resource usage (sum of threads x time).
  static double totalResources(const std::vector<Placement>& placements);

private:
  std::vector<const mv::VersionTable*> regions_;
  int coreBudget_;
  SchedulingGoal goal_;
};

} // namespace motune::runtime
