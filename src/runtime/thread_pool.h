// Persistent worker pool: the execution substrate standing in for the
// Insieme Runtime System's task processing (DESIGN.md §1).
//
// Kernels execute through parallel_for (see parallel_for.h) on this pool;
// the batch evaluator of the static optimizer also uses it to evaluate
// configurations concurrently, mirroring the paper's parallel evaluation
// of configuration sets (§III.A label 3).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace motune::runtime {

class ThreadPool {
public:
  /// Spawns `workers` threads (0 = hardware concurrency).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void wait();

  /// Runs one queued task on the calling thread if any is pending; returns
  /// false when the queue is empty. Blocked joiners (parallel_for) use this
  /// to help drain the queue, which makes nested parallelism deadlock-free
  /// even on a single-worker pool.
  bool tryRunOne();

  unsigned workers() const { return static_cast<unsigned>(threads_.size()); }

  /// Process-wide default pool, sized to the hardware.
  static ThreadPool& global();

private:
  void workerLoop();

  std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable idle_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  std::size_t inFlight_ = 0;
  bool stopping_ = false;
};

} // namespace motune::runtime
