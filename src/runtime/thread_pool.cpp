#include "runtime/thread_pool.h"

#include "observe/ring.h"
#include "observe/trace.h"
#include "support/check.h"

namespace motune::runtime {

namespace {

/// Pushes one runtime event into the calling thread's ring. Callers gate
/// on Tracer::global().enabled(), so the disabled path never reaches here.
void recordEvent(observe::RuntimeEvent::Kind kind, double start, double end,
                 std::int64_t arg0 = 0, std::int64_t arg1 = 0) {
  observe::RuntimeEvent event;
  event.kind = kind;
  event.start = start;
  event.duration = end - start;
  event.arg0 = arg0;
  event.arg1 = arg1;
  observe::RuntimeLog::global().ring().tryPush(event);
}

} // namespace

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wakeWorkers_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MOTUNE_CHECK(task != nullptr);
  // Propagate the submitter's tracer override: a job worker's parallel
  // evaluations must land in the same per-job trace as its serial ones.
  if (observe::Tracer* active = observe::ScopedTracer::current())
    task = [active, inner = std::move(task)] {
      observe::ScopedTracer scope(active);
      inner();
    };
  {
    std::lock_guard lock(mutex_);
    MOTUNE_CHECK_MSG(!stopping_, "submit() on a stopping pool");
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  wakeWorkers_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
}

bool ThreadPool::tryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  // One relaxed atomic load when tracing is off (the acceptance budget for
  // the runtime path); when on, the task execution lands in this thread's
  // ring with arg0 = 1 marking a helping joiner rather than a pool worker.
  // Ring events always belong to the process tracer (which owns the rings
  // and drains them with its own epoch), never a per-job override.
  observe::Tracer& tracer = observe::Tracer::process();
  if (tracer.enabled()) {
    const double start = tracer.now();
    task();
    recordEvent(observe::RuntimeEvent::Kind::Task, start, tracer.now(),
                /*arg0=*/1);
  } else {
    task();
  }
  {
    std::lock_guard lock(mutex_);
    if (--inFlight_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::workerLoop() {
  for (;;) {
    observe::Tracer& tracer = observe::Tracer::process();
    const bool traced = tracer.enabled();
    const double waitStart = traced ? tracer.now() : 0.0;
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wakeWorkers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return; // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    if (traced) {
      const double taskStart = tracer.now();
      // The wait gap becomes an idle event only when it is long enough to
      // matter on a timeline (>= 1us), keeping ring pressure proportional
      // to actual idleness rather than queue throughput.
      if (taskStart - waitStart >= 1e-6)
        recordEvent(observe::RuntimeEvent::Kind::Idle, waitStart, taskStart);
      task();
      recordEvent(observe::RuntimeEvent::Kind::Task, taskStart, tracer.now());
    } else {
      task();
    }
    {
      std::lock_guard lock(mutex_);
      if (--inFlight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace motune::runtime
