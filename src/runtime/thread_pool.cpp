#include "runtime/thread_pool.h"

#include "support/check.h"

namespace motune::runtime {

ThreadPool::ThreadPool(unsigned workers) {
  if (workers == 0) workers = std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  wakeWorkers_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::submit(std::function<void()> task) {
  MOTUNE_CHECK(task != nullptr);
  {
    std::lock_guard lock(mutex_);
    MOTUNE_CHECK_MSG(!stopping_, "submit() on a stopping pool");
    queue_.push_back(std::move(task));
    ++inFlight_;
  }
  wakeWorkers_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(mutex_);
  idle_.wait(lock, [this] { return inFlight_ == 0; });
}

bool ThreadPool::tryRunOne() {
  std::function<void()> task;
  {
    std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  {
    std::lock_guard lock(mutex_);
    if (--inFlight_ == 0) idle_.notify_all();
  }
  return true;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      wakeWorkers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return; // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      std::lock_guard lock(mutex_);
      if (--inFlight_ == 0) idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

} // namespace motune::runtime
