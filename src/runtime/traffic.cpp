#include "runtime/traffic.h"

#include "support/check.h"
#include "support/json.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace motune::runtime {

namespace {

// Shortest %g round-trip representation of a double for the spec printer.
std::string fmtDouble(double v) {
  for (int precision = 6; precision <= 17; ++precision) {
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.*g", precision, v);
    if (std::stod(buf) == v) return buf;
  }
  return "0";
}

// SplitMix64-style finalizer for counter-based noise hashing.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

} // namespace

std::uint64_t TrafficSpec::totalInvocations() const {
  std::uint64_t total = 0;
  for (const TrafficPhase& p : phases) total += p.invocations;
  return total;
}

void TrafficSpec::scaleTo(std::uint64_t total) {
  const std::uint64_t current = totalInvocations();
  MOTUNE_CHECK_MSG(current > 0, "cannot scale an empty traffic spec");
  MOTUNE_CHECK_MSG(total > 0, "scaled invocation total must be positive");
  for (TrafficPhase& p : phases) {
    const double share =
        static_cast<double>(p.invocations) / static_cast<double>(current);
    p.invocations = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(std::llround(share * total)));
  }
}

TrafficSpec parseTrafficSpec(const std::string& text) {
  TrafficSpec spec;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  auto fail = [&](const std::string& what) {
    throw support::CheckError("traffic spec line " + std::to_string(lineno) +
                              ": " + what);
  };
  while (std::getline(in, line)) {
    ++lineno;
    const std::size_t hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream words(line);
    std::string directive;
    if (!(words >> directive)) continue;
    auto number = [&](const std::string& token, double lo) {
      double v = 0.0;
      try {
        std::size_t used = 0;
        v = std::stod(token, &used);
        if (used != token.size()) throw std::invalid_argument(token);
      } catch (const std::exception&) {
        fail("malformed number '" + token + "'");
      }
      if (v < lo) fail("value " + token + " below minimum");
      return v;
    };
    auto oneNumber = [&](double lo) {
      std::string token;
      if (!(words >> token)) fail("missing value after " + directive);
      return number(token, lo);
    };
    if (directive == "seed") {
      std::string token;
      if (!(words >> token)) fail("missing value after seed");
      try {
        spec.seed = std::stoull(token);
      } catch (const std::exception&) {
        fail("malformed seed '" + token + "'");
      }
    } else if (directive == "ref-size") {
      spec.refSize = static_cast<std::int64_t>(oneNumber(1.0));
    } else if (directive == "fork-cost") {
      spec.forkCost = oneNumber(0.0);
    } else if (directive == "oversub-penalty") {
      spec.oversubPenalty = oneNumber(1.0);
    } else if (directive == "work-exponent") {
      spec.workExponent = oneNumber(0.0);
    } else if (directive == "default-threads") {
      spec.defaultThreads = static_cast<int>(oneNumber(1.0));
    } else if (directive == "phase") {
      TrafficPhase phase;
      std::string field;
      while (words >> field) {
        const std::size_t eq = field.find('=');
        if (eq == std::string::npos) fail("phase field without '=': " + field);
        const std::string key = field.substr(0, eq);
        const std::string value = field.substr(eq + 1);
        if (key == "name") {
          phase.name = value;
        } else if (key == "invocations") {
          phase.invocations = static_cast<std::uint64_t>(number(value, 1.0));
        } else if (key == "size") {
          const std::size_t dots = value.find("..");
          const std::string lo =
              dots == std::string::npos ? value : value.substr(0, dots);
          const std::string hi =
              dots == std::string::npos ? value : value.substr(dots + 2);
          phase.sizeLo = static_cast<std::int64_t>(number(lo, 1.0));
          phase.sizeHi = static_cast<std::int64_t>(number(hi, 1.0));
        } else if (key == "threads") {
          phase.availableThreads = static_cast<int>(number(value, 0.0));
        } else if (key == "pressure") {
          phase.pressure = static_cast<int>(number(value, 0.0));
        } else if (key == "noise") {
          phase.noise = number(value, 0.0);
        } else {
          fail("unknown phase field '" + key + "'");
        }
      }
      spec.phases.push_back(std::move(phase));
    } else {
      fail("unknown directive '" + directive + "'");
    }
  }
  MOTUNE_CHECK_MSG(!spec.phases.empty(), "traffic spec declares no phases");
  return spec;
}

std::string printTrafficSpec(const TrafficSpec& spec) {
  std::ostringstream out;
  out << "seed " << spec.seed << "\n";
  out << "ref-size " << spec.refSize << "\n";
  out << "fork-cost " << fmtDouble(spec.forkCost) << "\n";
  out << "oversub-penalty " << fmtDouble(spec.oversubPenalty) << "\n";
  out << "work-exponent " << fmtDouble(spec.workExponent) << "\n";
  out << "default-threads " << spec.defaultThreads << "\n";
  for (const TrafficPhase& p : spec.phases) {
    out << "phase name=" << p.name << " invocations=" << p.invocations
        << " size=" << p.sizeLo;
    if (p.sizeHi != p.sizeLo) out << ".." << p.sizeHi;
    if (p.availableThreads != 0) out << " threads=" << p.availableThreads;
    if (p.pressure != 0) out << " pressure=" << p.pressure;
    if (p.noise != 0.0) out << " noise=" << fmtDouble(p.noise);
    out << "\n";
  }
  return out.str();
}

std::vector<std::string> builtinScenarioNames() {
  return {"steady", "size-ramp", "thread-drop", "pressure-burst", "mix"};
}

TrafficSpec builtinScenario(const std::string& name, std::uint64_t seed) {
  // All scenarios model a 16-core host running a table tuned at size 4096.
  // fork-cost is deliberately large relative to the base times so that
  // small problem sizes genuinely favour low-thread versions.
  std::string text;
  if (name == "steady") {
    text = "phase name=steady invocations=20000 size=4096 noise=0.1\n";
  } else if (name == "size-ramp") {
    text = "phase name=large invocations=8000 size=4096 noise=0.05\n"
           "phase name=shrink invocations=8000 size=4096..64 noise=0.05\n"
           "phase name=small invocations=8000 size=64 noise=0.05\n";
  } else if (name == "thread-drop") {
    text = "phase name=full invocations=8000 size=4096 threads=16 noise=0.05\n"
           "phase name=starved invocations=8000 size=4096 threads=2 "
           "noise=0.05\n"
           "phase name=recovered invocations=8000 size=4096 threads=16 "
           "noise=0.05\n";
  } else if (name == "pressure-burst") {
    text = "phase name=alone invocations=8000 size=4096 noise=0.05\n"
           "phase name=burst invocations=8000 size=4096 pressure=14 "
           "noise=0.05\n"
           "phase name=calm invocations=8000 size=4096 noise=0.05\n";
  } else if (name == "mix") {
    text = "phase name=warm invocations=6000 size=4096 noise=0.08\n"
           "phase name=shrink invocations=6000 size=4096..128 noise=0.08\n"
           "phase name=starved invocations=6000 size=2048 threads=3 "
           "noise=0.08\n"
           "phase name=burst invocations=6000 size=4096 pressure=12 "
           "noise=0.08\n"
           "phase name=steady invocations=6000 size=4096 noise=0.08\n";
  } else {
    throw support::CheckError("unknown traffic scenario '" + name +
                              "' (known: steady, size-ramp, thread-drop, "
                              "pressure-burst, mix)");
  }
  TrafficSpec spec = parseTrafficSpec("fork-cost 2e-3\n" + text);
  spec.seed = seed;
  return spec;
}

TrafficGenerator::TrafficGenerator(TrafficSpec spec) : spec_(std::move(spec)) {
  MOTUNE_CHECK_MSG(!spec_.phases.empty(), "traffic spec declares no phases");
  MOTUNE_CHECK_MSG(spec_.defaultThreads > 0,
                   "default-threads must be positive");
  phaseStart_.reserve(spec_.phases.size());
  for (const TrafficPhase& p : spec_.phases) {
    MOTUNE_CHECK_MSG(p.invocations > 0, "phase with zero invocations");
    MOTUNE_CHECK_MSG(p.sizeLo > 0 && p.sizeHi > 0, "phase size must be >= 1");
    phaseStart_.push_back(total_);
    total_ += p.invocations;
  }
}

TrafficPoint TrafficGenerator::at(std::uint64_t index) const {
  MOTUNE_CHECK_MSG(index < total_, "traffic index out of range");
  const auto it =
      std::upper_bound(phaseStart_.begin(), phaseStart_.end(), index);
  const std::size_t phase =
      static_cast<std::size_t>(it - phaseStart_.begin()) - 1;
  const TrafficPhase& p = spec_.phases[phase];
  const std::uint64_t local = index - phaseStart_[phase];

  TrafficPoint point;
  point.index = index;
  point.phase = phase;
  if (p.sizeLo == p.sizeHi || p.invocations <= 1) {
    point.size = p.sizeLo;
  } else {
    const double t = static_cast<double>(local) /
                     static_cast<double>(p.invocations - 1);
    const double ratio =
        static_cast<double>(p.sizeHi) / static_cast<double>(p.sizeLo);
    const double size = static_cast<double>(p.sizeLo) * std::pow(ratio, t);
    point.size = std::max<std::int64_t>(1, std::llround(size));
  }
  point.availableThreads =
      p.availableThreads > 0 ? p.availableThreads : spec_.defaultThreads;
  point.pressure = p.pressure;
  return point;
}

AdaptiveContext TrafficGenerator::contextOf(const TrafficPoint& point) const {
  AdaptiveContext ctx;
  ctx.sizeBucket = sizeBucketOf(point.size);
  ctx.availableThreads = point.availableThreads;
  ctx.pressure = point.pressure;
  return ctx;
}

double TrafficGenerator::trueCost(const mv::VersionMeta& meta,
                                  const TrafficPoint& point) const {
  const int usable = std::max(1, point.availableThreads - point.pressure);
  const int threads = std::max(1, meta.threads);
  const int effective = std::min(threads, usable);
  const double scale = std::pow(
      static_cast<double>(point.size) / static_cast<double>(spec_.refSize),
      spec_.workExponent);
  // Total work at the tuned size is time * threads (parallel versions carry
  // their real waste); it shrinks or grows with the problem size, runs on
  // the threads actually usable, and pays for oversubscription plus a
  // per-extra-thread fork overhead that dominates at tiny sizes.
  double cost = meta.timeSeconds * threads * scale / effective;
  if (threads > usable) cost *= spec_.oversubPenalty;
  cost += spec_.forkCost * (threads - 1);
  return cost;
}

double TrafficGenerator::observedCost(const mv::VersionMeta& meta,
                                      const TrafficPoint& point,
                                      std::size_t arm) const {
  const double cost = trueCost(meta, point);
  const double noise = spec_.phases[point.phase].noise;
  if (noise <= 0.0) return cost;
  // Counter-based: the perturbation for (invocation, arm) is fixed by the
  // seed alone, never by which arms the policy happened to pick earlier.
  const std::uint64_t h =
      mix64(spec_.seed ^ mix64(point.index * 0x9e3779b97f4a7c15ull ^
                               (static_cast<std::uint64_t>(arm) + 1)));
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53; // [0, 1)
  return cost * (1.0 + noise * (2.0 * unit - 1.0));
}

double ReplayOutcome::convergenceRatio() const {
  if (adaptiveCost <= 0.0) return 1.0;
  return bestStaticCost / adaptiveCost;
}

namespace {

void writeLogLine(std::ostream& out, const char* name,
                  support::JsonObject attrs) {
  support::JsonObject record{{"type", support::Json("replay")},
                             {"name", support::Json(name)},
                             {"attrs", support::Json(std::move(attrs))}};
  out << support::Json(std::move(record)).dump(-1) << '\n';
}

} // namespace

ReplayOutcome replayTraffic(const TrafficSpec& spec,
                            const mv::VersionTable& table,
                            AdaptivePolicy& policy,
                            const ReplayOptions& options) {
  MOTUNE_CHECK_MSG(!table.empty(), "replay needs a non-empty version table");
  const TrafficGenerator gen(spec);
  const std::size_t arms = table.size();

  ReplayOutcome outcome;
  outcome.invocations = gen.total();
  outcome.selectionCounts.assign(arms, 0);

  if (options.log != nullptr) {
    const AdaptiveOptions& opts = policy.options();
    writeLogLine(
        *options.log, "replay.header",
        {{"format", support::Json("motune-replay-v1")},
         {"scenario", support::Json(options.scenario)},
         {"seed", support::Json(std::to_string(spec.seed))},
         {"policy_seed", support::Json(std::to_string(opts.seed))},
         {"policy", support::Json(policy.name())},
         {"versions", support::Json(arms)},
         {"invocations", support::Json(gen.total())},
         {"window", support::Json(opts.window)},
         {"epsilon", support::Json(opts.epsilon)},
         {"min_dwell", support::Json(opts.minDwell)},
         {"switch_margin", support::Json(opts.switchMargin)},
         {"explore", support::Json(opts.explore == ExploreKind::Ucb
                                       ? "ucb"
                                       : "epsilon-greedy")}});
  }

  std::vector<double> armBill(arms, 0.0); // per-phase static bills
  std::uint64_t index = 0;
  for (std::size_t phaseIdx = 0; phaseIdx < spec.phases.size(); ++phaseIdx) {
    const TrafficPhase& phase = spec.phases[phaseIdx];
    PhaseOutcome po;
    po.name = phase.name;
    po.invocations = phase.invocations;
    std::fill(armBill.begin(), armBill.end(), 0.0);
    const std::uint64_t switchesBefore = policy.switches();
    const std::uint64_t explorationsBefore = policy.explorations();

    if (options.log != nullptr) {
      writeLogLine(*options.log, "replay.phase",
                   {{"phase", support::Json(phaseIdx)},
                    {"phase_name", support::Json(phase.name)},
                    {"invocation", support::Json(index)},
                    {"invocations", support::Json(phase.invocations)},
                    {"size_lo", support::Json(phase.sizeLo)},
                    {"size_hi", support::Json(phase.sizeHi)},
                    {"threads", support::Json(phase.availableThreads)},
                    {"pressure", support::Json(phase.pressure)},
                    {"noise", support::Json(phase.noise)}});
    }

    for (std::uint64_t local = 0; local < phase.invocations;
         ++local, ++index) {
      const TrafficPoint point = gen.at(index);
      policy.setContext(gen.contextOf(point));
      const std::size_t before = policy.committedArm();
      const std::size_t arm = policy.select(table);
      MOTUNE_CHECK(arm < arms);

      double charged = 0.0;
      double best = 0.0;
      for (std::size_t a = 0; a < arms; ++a) {
        const double cost = gen.observedCost(table[a].meta, point, a);
        armBill[a] += cost;
        if (a == 0 || cost < best) best = cost;
        if (a == arm) charged = cost;
      }
      po.adaptiveCost += charged;
      outcome.oracleCost += best;
      ++outcome.selectionCounts[arm];

      if (options.execute) table[arm].run(table[arm].meta.threads);
      policy.onMeasured(arm, charged);

      if (options.log != nullptr &&
          policy.lastReason() == SelectReason::Switch) {
        writeLogLine(*options.log, "replay.switch",
                     {{"invocation", support::Json(point.index)},
                      {"from", support::Json(before)},
                      {"to", support::Json(arm)}});
      }
    }

    po.bestStaticArm = 0;
    for (std::size_t a = 1; a < arms; ++a)
      if (armBill[a] < armBill[po.bestStaticArm]) po.bestStaticArm = a;
    po.bestStaticCost = armBill[po.bestStaticArm];
    po.switches = policy.switches() - switchesBefore;
    po.explorations = policy.explorations() - explorationsBefore;
    outcome.adaptiveCost += po.adaptiveCost;
    outcome.bestStaticCost += po.bestStaticCost;
    outcome.phases.push_back(std::move(po));
  }

  outcome.switches = policy.switches();
  outcome.explorations = policy.explorations();
  outcome.contextShifts = policy.contextShifts();

  if (options.log != nullptr) {
    support::JsonArray counts;
    counts.reserve(arms);
    for (std::uint64_t c : outcome.selectionCounts)
      counts.emplace_back(c);
    writeLogLine(*options.log, "replay.summary",
                 {{"invocations", support::Json(outcome.invocations)},
                  {"switches", support::Json(outcome.switches)},
                  {"explorations", support::Json(outcome.explorations)},
                  {"context_shifts", support::Json(outcome.contextShifts)},
                  {"counts", support::Json(std::move(counts))},
                  {"adaptive_cost", support::Json(outcome.adaptiveCost)},
                  {"best_static_cost",
                   support::Json(outcome.bestStaticCost)},
                  {"oracle_cost", support::Json(outcome.oracleCost)},
                  {"ratio", support::Json(outcome.convergenceRatio())}});
  }
  return outcome;
}

mv::VersionTable syntheticTable(std::size_t versions, std::uint64_t seed,
                                int maxThreads) {
  MOTUNE_CHECK_MSG(versions > 0, "synthetic table needs at least one version");
  MOTUNE_CHECK_MSG(maxThreads >= 1, "synthetic table needs maxThreads >= 1");
  support::Rng rng(seed);
  mv::VersionTable table;
  const double serialTime = 1.0;
  for (std::size_t i = 0; i < versions; ++i) {
    // Thread counts descend geometrically from maxThreads to 1; speedup is
    // sub-linear (waste grows with thread count), so times ascend while
    // resources descend — a Pareto front shaped like the paper's tables.
    const double frac =
        versions == 1 ? 0.0
                      : static_cast<double>(i) /
                            static_cast<double>(versions - 1);
    const int threads = std::max(
        1, static_cast<int>(std::llround(
               std::pow(static_cast<double>(maxThreads), 1.0 - frac))));
    const double efficiency = 0.55 + 0.4 * frac + 0.05 * rng.uniform();
    mv::VersionMeta meta;
    meta.configuration = {static_cast<std::int64_t>(i)};
    meta.threads = threads;
    meta.timeSeconds =
        threads == 1 ? serialTime
                     : serialTime / (static_cast<double>(threads) * efficiency);
    meta.resources = static_cast<double>(threads) * meta.timeSeconds;
    table.add({meta, [](int) {}});
  }
  return table;
}

} // namespace motune::runtime
