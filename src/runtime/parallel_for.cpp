#include "runtime/parallel_for.h"

#include "observe/ring.h"
#include "observe/trace.h"
#include "support/check.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

namespace motune::runtime {

void parallelForBlocked(
    ThreadPool& pool, std::int64_t begin, std::int64_t end, int threads,
    const std::function<void(std::int64_t, std::int64_t)>& fn) {
  MOTUNE_CHECK(threads >= 1);
  if (end <= begin) return;
  const std::int64_t total = end - begin;
  const auto nChunks = static_cast<std::int64_t>(
      std::min<std::int64_t>(threads, total));
  if (nChunks == 1) {
    // Single-chunk runs (one worker, or total == 1) execute inline on the
    // caller; still record the chunk so single-core machines trace too.
    // Ring events report to the process tracer that owns the rings.
    observe::Tracer& tracer = observe::Tracer::process();
    if (tracer.enabled()) {
      observe::RuntimeEvent event;
      event.kind = observe::RuntimeEvent::Kind::Chunk;
      event.arg0 = begin;
      event.arg1 = end;
      event.start = tracer.now();
      fn(begin, end);
      event.duration = tracer.now() - event.start;
      observe::RuntimeLog::global().ring().tryPush(event);
    } else {
      fn(begin, end);
    }
    return;
  }

  // Static chunking identical to OpenMP schedule(static): ceil-sized blocks.
  const std::int64_t chunk = (total + nChunks - 1) / nChunks;

  std::atomic<std::int64_t> remaining{nChunks};
  std::mutex doneMutex;
  std::condition_variable doneCv;

  for (std::int64_t c = 0; c < nChunks; ++c) {
    const std::int64_t lo = begin + c * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    pool.submit([&, lo, hi] {
      if (lo < hi) {
        // One relaxed load when tracing is off; when on, each chunk's
        // execution window lands in the executing worker's ring.
        observe::Tracer& tracer = observe::Tracer::process();
        if (tracer.enabled()) {
          observe::RuntimeEvent event;
          event.kind = observe::RuntimeEvent::Kind::Chunk;
          event.arg0 = lo;
          event.arg1 = hi;
          event.start = tracer.now();
          fn(lo, hi);
          event.duration = tracer.now() - event.start;
          observe::RuntimeLog::global().ring().tryPush(event);
        } else {
          fn(lo, hi);
        }
      }
      if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        std::lock_guard lock(doneMutex);
        doneCv.notify_all();
      }
    });
  }

  // Help drain the queue while waiting: guarantees progress under nested
  // parallelism (a pool task may itself be inside a parallelFor).
  while (remaining.load(std::memory_order_acquire) != 0) {
    if (pool.tryRunOne()) continue;
    std::unique_lock lock(doneMutex);
    doneCv.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return remaining.load(std::memory_order_acquire) == 0;
    });
  }
}

void parallelFor(ThreadPool& pool, std::int64_t begin, std::int64_t end,
                 int threads, const std::function<void(std::int64_t)>& fn) {
  parallelForBlocked(pool, begin, end, threads,
                     [&](std::int64_t lo, std::int64_t hi) {
                       for (std::int64_t i = lo; i < hi; ++i) fn(i);
                     });
}

} // namespace motune::runtime
