#include "ir/print.h"

#include "support/check.h"

#include <cmath>
#include <sstream>
#include <string>

namespace motune::ir {

namespace {

std::string subscriptList(const std::vector<AffineExpr>& subs) {
  std::string out;
  for (const auto& s : subs) out += "[" + s.str() + "]";
  return out;
}

// Renders a Bound as a C expression; min() caps become ternaries.
std::string boundToC(const Bound& b) {
  if (!b.cap) return b.base.str();
  const std::string lhs = b.base.str();
  const std::string rhs = b.cap->str();
  return "((" + lhs + ") < (" + rhs + ") ? (" + lhs + ") : (" + rhs + "))";
}

const char* binOpToken(BinOp op) {
  switch (op) {
  case BinOp::Add: return " + ";
  case BinOp::Sub: return " - ";
  case BinOp::Mul: return " * ";
  case BinOp::Div: return " / ";
  case BinOp::Min: return nullptr; // rendered as fmin()
  case BinOp::Max: return nullptr; // rendered as fmax()
  }
  return nullptr;
}

std::string sourceNumber(double v);

void printExpr(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
  case Expr::Kind::Const: {
    // Shortest round-trippable rendering: the default 6-digit precision
    // would make the compiled code compute with a different constant than
    // the IR (caught by the differential fuzzer, src/verify/).
    os << sourceNumber(e.constant);
    return;
  }
  case Expr::Kind::IvRef:
    os << "(double)" << e.iv;
    return;
  case Expr::Kind::Read:
    os << e.array << subscriptList(e.subscripts);
    return;
  case Expr::Kind::Binary: {
    const char* tok = binOpToken(e.binOp);
    if (tok == nullptr) {
      os << (e.binOp == BinOp::Min ? "fmin(" : "fmax(");
      printExpr(*e.lhs, os);
      os << ", ";
      printExpr(*e.rhs, os);
      os << ")";
      return;
    }
    os << "(";
    printExpr(*e.lhs, os);
    os << tok;
    printExpr(*e.rhs, os);
    os << ")";
    return;
  }
  case Expr::Kind::Unary:
    switch (e.unOp) {
    case UnOp::Neg: os << "(-"; break;
    case UnOp::Sqrt: os << "sqrt("; break;
    case UnOp::Abs: os << "fabs("; break;
    }
    printExpr(*e.lhs, os);
    os << ")";
    return;
  }
}

void printStmt(const Stmt& s, int indent, bool emitPragmas,
               std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (s.kind == Stmt::Kind::Assign) {
    const Assign& a = s.assign;
    os << pad << a.array << subscriptList(a.subscripts)
       << (a.accumulate ? " += " : " = ");
    printExpr(*a.rhs, os);
    os << ";\n";
    return;
  }
  const Loop& l = s.loop;
  if (l.parallel && emitPragmas) {
    os << pad << "#pragma omp parallel for";
    if (l.collapse > 1) os << " collapse(" << l.collapse << ")";
    os << " schedule(static)\n";
  }
  os << pad << "for (long " << l.iv << " = " << l.lower.str() << "; " << l.iv
     << " < " << boundToC(l.upper) << "; " << l.iv << " += " << l.step
     << ") {\n";
  for (const auto& child : l.body)
    printStmt(*child, indent + 1, emitPragmas, os);
  os << pad << "}\n";
}

// --- kernel-language (parse.h grammar) printing --------------------------

/// Exact decimal rendering of a double: shortest of the round-trippable
/// precisions, so `0.2` stays `0.2` while oddballs get all 17 digits.
std::string sourceNumber(double v) {
  for (int precision : {6, 9, 12, 15, 17}) {
    std::ostringstream os;
    os.precision(precision);
    os << v;
    if (std::stod(os.str()) == v) return os.str();
  }
  return "0";
}

void printSourceExpr(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
  case Expr::Kind::Const:
    if (e.constant < 0 ||
        (e.constant == 0.0 && std::signbit(e.constant) != 0)) {
      // The grammar has no negative literals; `-c` lexes as unary minus,
      // which the parser folds back into a negative constant.
      os << "-" << sourceNumber(-e.constant);
    } else {
      os << sourceNumber(e.constant);
    }
    return;
  case Expr::Kind::IvRef:
    os << e.iv;
    return;
  case Expr::Kind::Read:
    os << e.array << subscriptList(e.subscripts);
    return;
  case Expr::Kind::Binary: {
    if (e.binOp == BinOp::Min || e.binOp == BinOp::Max) {
      os << (e.binOp == BinOp::Min ? "min(" : "max(");
      printSourceExpr(*e.lhs, os);
      os << ", ";
      printSourceExpr(*e.rhs, os);
      os << ")";
      return;
    }
    const char* tok = binOpToken(e.binOp);
    os << "(";
    printSourceExpr(*e.lhs, os);
    os << tok;
    printSourceExpr(*e.rhs, os);
    os << ")";
    return;
  }
  case Expr::Kind::Unary:
    switch (e.unOp) {
    case UnOp::Neg: os << "(-"; break;
    case UnOp::Sqrt: os << "sqrt("; break;
    case UnOp::Abs: os << "abs("; break;
    }
    printSourceExpr(*e.lhs, os);
    os << ")";
    return;
  }
}

void printSourceStmt(const Stmt& s, int indent, std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (s.kind == Stmt::Kind::Assign) {
    const Assign& a = s.assign;
    os << pad << a.array << subscriptList(a.subscripts)
       << (a.accumulate ? " += " : " = ");
    printSourceExpr(*a.rhs, os);
    os << ";\n";
    return;
  }
  const Loop& l = s.loop;
  MOTUNE_CHECK_MSG(l.step == 1 && !l.upper.cap.has_value() && !l.parallel,
                   "printSource requires an untransformed program");
  os << pad << "for " << l.iv << " = " << l.lower.str() << " .. "
     << l.upper.base.str() << " {\n";
  for (const auto& child : l.body) printSourceStmt(*child, indent + 1, os);
  os << pad << "}\n";
}

} // namespace

std::string printSource(const Program& p) {
  std::ostringstream os;
  for (const auto& a : p.arrays) {
    os << "array " << a.name;
    for (std::int64_t d : a.dims) os << "[" << d << "]";
    os << "\n";
  }
  for (const auto& s : p.body) printSourceStmt(*s, 0, os);
  return os.str();
}

std::string toC(const Expr& e) {
  std::ostringstream os;
  printExpr(e, os);
  return os.str();
}

std::string toC(const Stmt& s, int indent, bool emitPragmas) {
  std::ostringstream os;
  printStmt(s, indent, emitPragmas, os);
  return os.str();
}

std::string toC(const Program& p, bool emitPragmas) {
  std::ostringstream os;
  for (const auto& s : p.body) printStmt(*s, 1, emitPragmas, os);
  return os.str();
}

} // namespace motune::ir
