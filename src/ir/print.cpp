#include "ir/print.h"

#include "support/check.h"

#include <sstream>

namespace motune::ir {

namespace {

std::string subscriptList(const std::vector<AffineExpr>& subs) {
  std::string out;
  for (const auto& s : subs) out += "[" + s.str() + "]";
  return out;
}

// Renders a Bound as a C expression; min() caps become ternaries.
std::string boundToC(const Bound& b) {
  if (!b.cap) return b.base.str();
  const std::string lhs = b.base.str();
  const std::string rhs = b.cap->str();
  return "((" + lhs + ") < (" + rhs + ") ? (" + lhs + ") : (" + rhs + "))";
}

const char* binOpToken(BinOp op) {
  switch (op) {
  case BinOp::Add: return " + ";
  case BinOp::Sub: return " - ";
  case BinOp::Mul: return " * ";
  case BinOp::Div: return " / ";
  case BinOp::Min: return nullptr; // rendered as fmin()
  case BinOp::Max: return nullptr; // rendered as fmax()
  }
  return nullptr;
}

void printExpr(const Expr& e, std::ostringstream& os) {
  switch (e.kind) {
  case Expr::Kind::Const: {
    os << e.constant;
    return;
  }
  case Expr::Kind::IvRef:
    os << "(double)" << e.iv;
    return;
  case Expr::Kind::Read:
    os << e.array << subscriptList(e.subscripts);
    return;
  case Expr::Kind::Binary: {
    const char* tok = binOpToken(e.binOp);
    if (tok == nullptr) {
      os << (e.binOp == BinOp::Min ? "fmin(" : "fmax(");
      printExpr(*e.lhs, os);
      os << ", ";
      printExpr(*e.rhs, os);
      os << ")";
      return;
    }
    os << "(";
    printExpr(*e.lhs, os);
    os << tok;
    printExpr(*e.rhs, os);
    os << ")";
    return;
  }
  case Expr::Kind::Unary:
    switch (e.unOp) {
    case UnOp::Neg: os << "(-"; break;
    case UnOp::Sqrt: os << "sqrt("; break;
    case UnOp::Abs: os << "fabs("; break;
    }
    printExpr(*e.lhs, os);
    os << ")";
    return;
  }
}

void printStmt(const Stmt& s, int indent, bool emitPragmas,
               std::ostringstream& os) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  if (s.kind == Stmt::Kind::Assign) {
    const Assign& a = s.assign;
    os << pad << a.array << subscriptList(a.subscripts)
       << (a.accumulate ? " += " : " = ");
    printExpr(*a.rhs, os);
    os << ";\n";
    return;
  }
  const Loop& l = s.loop;
  if (l.parallel && emitPragmas) {
    os << pad << "#pragma omp parallel for";
    if (l.collapse > 1) os << " collapse(" << l.collapse << ")";
    os << " schedule(static)\n";
  }
  os << pad << "for (long " << l.iv << " = " << l.lower.str() << "; " << l.iv
     << " < " << boundToC(l.upper) << "; " << l.iv << " += " << l.step
     << ") {\n";
  for (const auto& child : l.body)
    printStmt(*child, indent + 1, emitPragmas, os);
  os << pad << "}\n";
}

} // namespace

std::string toC(const Expr& e) {
  std::ostringstream os;
  printExpr(e, os);
  return os.str();
}

std::string toC(const Stmt& s, int indent, bool emitPragmas) {
  std::ostringstream os;
  printStmt(s, indent, emitPragmas, os);
  return os.str();
}

std::string toC(const Program& p, bool emitPragmas) {
  std::ostringstream os;
  for (const auto& s : p.body) printStmt(*s, 1, emitPragmas, os);
  return os.str();
}

} // namespace motune::ir
