// Algebraic simplification of value expressions: constant folding and
// identity elimination. The code generator runs it before emission so
// generated modules don't carry degenerate arithmetic (e.g. `x * 1` from
// mechanical transformation pipelines), and tests use it to normalize
// expressions for comparison.
#pragma once

#include "ir/expr.h"
#include "ir/program.h"

namespace motune::ir {

/// Returns a simplified equivalent expression. Applied rules:
///   const OP const -> folded;  x+0, 0+x, x-0, x*1, 1*x, x/1 -> x;
///   x*0, 0*x -> 0;  0-x -> -x;  -(-x) -> x;  -const -> folded;
///   sqrt/abs of non-negative constants -> folded.
/// Floating-point safe subset only: no reassociation, no distribution,
/// no x-x or x/x rules (NaN/Inf semantics), so results stay bit-identical.
ExprPtr simplify(const ExprPtr& e);

/// Simplifies every assignment's right-hand side in place.
void simplify(Program& p);

} // namespace motune::ir
