#include "ir/affine.h"

#include "support/check.h"

#include <algorithm>
#include <sstream>

namespace motune::ir {

void Env::set(const std::string& name, std::int64_t value) {
  for (auto& [n, v] : vars_) {
    if (n == name) {
      v = value;
      return;
    }
  }
  vars_.emplace_back(name, value);
}

std::int64_t Env::get(const std::string& name) const {
  for (const auto& [n, v] : vars_)
    if (n == name) return v;
  MOTUNE_CHECK_MSG(false, "unbound variable: " + name);
  return 0;
}

bool Env::has(const std::string& name) const {
  return std::any_of(vars_.begin(), vars_.end(),
                     [&](const auto& p) { return p.first == name; });
}

AffineExpr AffineExpr::constant(std::int64_t c) {
  AffineExpr e;
  e.constant_ = c;
  return e;
}

AffineExpr AffineExpr::var(const std::string& name, std::int64_t coeff) {
  AffineExpr e;
  e.addTerm(name, coeff);
  return e;
}

void AffineExpr::addTerm(const std::string& name, std::int64_t coeff) {
  if (coeff == 0) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), name,
      [](const auto& term, const std::string& n) { return term.first < n; });
  if (it != terms_.end() && it->first == name) {
    it->second += coeff;
    if (it->second == 0) terms_.erase(it);
  } else {
    terms_.insert(it, {name, coeff});
  }
}

AffineExpr AffineExpr::operator+(const AffineExpr& rhs) const {
  AffineExpr out = *this;
  out.constant_ += rhs.constant_;
  for (const auto& [name, coeff] : rhs.terms_) out.addTerm(name, coeff);
  return out;
}

AffineExpr AffineExpr::operator-(const AffineExpr& rhs) const {
  return *this + rhs * -1;
}

AffineExpr AffineExpr::operator*(std::int64_t factor) const {
  AffineExpr out;
  out.constant_ = constant_ * factor;
  if (factor != 0) {
    out.terms_ = terms_;
    for (auto& [name, coeff] : out.terms_) coeff *= factor;
  }
  return out;
}

AffineExpr AffineExpr::operator+(std::int64_t c) const {
  AffineExpr out = *this;
  out.constant_ += c;
  return out;
}

AffineExpr AffineExpr::operator-(std::int64_t c) const {
  return *this + (-c);
}

std::int64_t AffineExpr::eval(const Env& env) const {
  std::int64_t value = constant_;
  for (const auto& [name, coeff] : terms_) value += coeff * env.get(name);
  return value;
}

std::int64_t AffineExpr::coeffOf(const std::string& name) const {
  for (const auto& [n, c] : terms_)
    if (n == name) return c;
  return 0;
}

bool AffineExpr::dependsOn(const std::string& name) const {
  return coeffOf(name) != 0;
}

AffineExpr AffineExpr::substitute(const std::string& name,
                                  const AffineExpr& replacement) const {
  const std::int64_t coeff = coeffOf(name);
  if (coeff == 0) return *this;
  AffineExpr out = *this;
  out.addTerm(name, -coeff); // drop the term
  return out + replacement * coeff;
}

std::vector<std::string> AffineExpr::variables() const {
  std::vector<std::string> names;
  names.reserve(terms_.size());
  for (const auto& [name, coeff] : terms_) {
    (void)coeff;
    names.push_back(name);
  }
  return names;
}

std::string AffineExpr::str() const {
  std::ostringstream os;
  bool first = true;
  for (const auto& [name, coeff] : terms_) {
    if (!first) os << (coeff >= 0 ? " + " : " - ");
    const std::int64_t mag = first ? coeff : std::abs(coeff);
    if (first && coeff < 0) os << "-";
    if (std::abs(mag) != 1)
      os << std::abs(mag) << "*" << name;
    else
      os << name;
    first = false;
  }
  if (constant_ != 0 || first) {
    if (!first) os << (constant_ >= 0 ? " + " : " - ");
    os << (first ? constant_ : std::abs(constant_));
  }
  return os.str();
}

std::int64_t Bound::eval(const Env& env) const {
  const std::int64_t b = base.eval(env);
  return cap ? std::min(b, cap->eval(env)) : b;
}

Bound Bound::substitute(const std::string& name, const AffineExpr& repl) const {
  Bound out;
  out.base = base.substitute(name, repl);
  if (cap) out.cap = cap->substitute(name, repl);
  return out;
}

std::string Bound::str() const {
  if (!cap) return base.str();
  return "min(" + base.str() + ", " + cap->str() + ")";
}

} // namespace motune::ir
