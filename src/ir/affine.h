// Affine integer expressions over named loop induction variables.
//
// Loop bounds and array subscripts in the IR are affine: c0 + sum ci * iv_i.
// This restriction is what makes dependence analysis, tiling legality and
// the footprint-based performance model decidable, mirroring the polyhedral
// subset the paper's analyzer operates on.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace motune::ir {

/// Evaluation environment mapping induction-variable names to values.
class Env {
public:
  void set(const std::string& name, std::int64_t value);
  std::int64_t get(const std::string& name) const;
  bool has(const std::string& name) const;

private:
  // Loop nests are shallow (<= ~12 levels after tiling); linear scan over a
  // small vector beats a hash map here.
  std::vector<std::pair<std::string, std::int64_t>> vars_;
};

/// c0 + sum_i ci * iv_i with integer coefficients; terms kept sorted by name.
class AffineExpr {
public:
  AffineExpr() = default;

  static AffineExpr constant(std::int64_t c);
  static AffineExpr var(const std::string& name, std::int64_t coeff = 1);

  AffineExpr operator+(const AffineExpr& rhs) const;
  AffineExpr operator-(const AffineExpr& rhs) const;
  AffineExpr operator*(std::int64_t factor) const;
  AffineExpr operator+(std::int64_t c) const;
  AffineExpr operator-(std::int64_t c) const;

  std::int64_t eval(const Env& env) const;

  std::int64_t constantTerm() const { return constant_; }
  std::int64_t coeffOf(const std::string& name) const;
  bool dependsOn(const std::string& name) const;
  bool isConstant() const { return terms_.empty(); }

  /// Substitutes variable `name` with another affine expression (used by
  /// loop transformations, e.g. unrolling replaces iv with iv + offset).
  AffineExpr substitute(const std::string& name,
                        const AffineExpr& replacement) const;

  /// All variables with non-zero coefficient, in sorted order.
  std::vector<std::string> variables() const;

  const std::vector<std::pair<std::string, std::int64_t>>& terms() const {
    return terms_;
  }

  std::string str() const;

  bool operator==(const AffineExpr& rhs) const = default;

private:
  void addTerm(const std::string& name, std::int64_t coeff);

  std::int64_t constant_ = 0;
  std::vector<std::pair<std::string, std::int64_t>> terms_;
};

/// An upper loop bound of the form min(base, cap); `cap` appears on the
/// inner point loops produced by tiling (i < min(it + T, N)).
struct Bound {
  AffineExpr base;
  std::optional<AffineExpr> cap;

  Bound() = default;
  Bound(AffineExpr b) : base(std::move(b)) {} // NOLINT(google-explicit-*)
  Bound(AffineExpr b, AffineExpr c) : base(std::move(b)), cap(std::move(c)) {}

  std::int64_t eval(const Env& env) const;
  Bound substitute(const std::string& name, const AffineExpr& repl) const;
  std::string str() const;
  bool operator==(const Bound& rhs) const = default;
};

} // namespace motune::ir
