#include "ir/bytecode.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::ir {

namespace {
// Identical array layout to the tree interpreter so traces are
// address-for-address comparable between the two engines.
constexpr std::uint64_t kPageAlign = 4096;

std::uint64_t alignUp(std::uint64_t x) {
  return (x + kPageAlign - 1) / kPageAlign * kPageAlign;
}
} // namespace

CompiledProgram::CompiledProgram(const Program& program) {
  std::uint64_t nextBase = kPageAlign;
  arrays_.reserve(program.arrays.size());
  for (const auto& decl : program.arrays) {
    ArrayInfo info;
    info.name = decl.name;
    info.dims = decl.dims;
    info.elemBytes = decl.elemBytes;
    info.baseAddr = nextBase;
    info.data.assign(static_cast<std::size_t>(decl.elements()), 0.0);
    nextBase = alignUp(nextBase + static_cast<std::uint64_t>(decl.bytes()));
    arraySlots_.emplace(decl.name, static_cast<std::uint32_t>(arrays_.size()));
    arrays_.push_back(std::move(info));
  }
  for (const auto& s : program.body) compileStmt(*s);
  ivRegs_.assign(ivSlots_.size(), 0);
  boundRegs_.assign(numBoundSlots_, 0);
  stack_.assign(static_cast<std::size_t>(std::max(maxStackDepth_, 1)), 0.0);
}

std::uint32_t CompiledProgram::ivSlot(const std::string& name) {
  auto [it, inserted] =
      ivSlots_.emplace(name, static_cast<std::uint32_t>(ivSlots_.size()));
  (void)inserted;
  return it->second;
}

std::uint32_t CompiledProgram::compileAffine(const AffineExpr& e) {
  AffineFn fn;
  fn.c0 = e.constantTerm();
  fn.first = static_cast<std::uint32_t>(affineTerms_.size());
  for (const auto& [name, coeff] : e.terms())
    affineTerms_.push_back({ivSlot(name), coeff});
  fn.count = static_cast<std::uint32_t>(affineTerms_.size()) - fn.first;
  affines_.push_back(fn);
  return static_cast<std::uint32_t>(affines_.size()) - 1;
}

std::uint32_t CompiledProgram::compileAccess(
    const std::string& arrayName, const std::vector<AffineExpr>& subs) {
  auto it = arraySlots_.find(arrayName);
  MOTUNE_CHECK_MSG(it != arraySlots_.end(), "unknown array: " + arrayName);
  MOTUNE_CHECK_MSG(subs.size() == arrays_[it->second].dims.size(),
                   "subscript rank mismatch for array " + arrayName);
  Access access;
  access.arraySlot = it->second;
  access.firstSub = static_cast<std::uint32_t>(subscripts_.size());
  access.numSubs = static_cast<std::uint32_t>(subs.size());
  for (const auto& sub : subs) subscripts_.push_back(compileAffine(sub));
  accesses_.push_back(access);
  return static_cast<std::uint32_t>(accesses_.size()) - 1;
}

void CompiledProgram::compileExpr(const Expr& e, std::vector<EInstr>& out,
                                  int& depth, int& maxDepth) {
  switch (e.kind) {
  case Expr::Kind::Const:
    consts_.push_back(e.constant);
    out.push_back({EOp::Const, static_cast<std::uint32_t>(consts_.size()) - 1});
    maxDepth = std::max(maxDepth, ++depth);
    return;
  case Expr::Kind::IvRef:
    out.push_back({EOp::Iv, ivSlot(e.iv)});
    maxDepth = std::max(maxDepth, ++depth);
    return;
  case Expr::Kind::Read:
    out.push_back({EOp::Load, compileAccess(e.array, e.subscripts)});
    maxDepth = std::max(maxDepth, ++depth);
    return;
  case Expr::Kind::Binary: {
    compileExpr(*e.lhs, out, depth, maxDepth);
    compileExpr(*e.rhs, out, depth, maxDepth);
    EOp op = EOp::Add;
    switch (e.binOp) {
    case BinOp::Add: op = EOp::Add; break;
    case BinOp::Sub: op = EOp::Sub; break;
    case BinOp::Mul: op = EOp::Mul; break;
    case BinOp::Div: op = EOp::Div; break;
    case BinOp::Min: op = EOp::Min; break;
    case BinOp::Max: op = EOp::Max; break;
    }
    out.push_back({op, 0});
    --depth;
    return;
  }
  case Expr::Kind::Unary: {
    compileExpr(*e.lhs, out, depth, maxDepth);
    EOp op = EOp::Neg;
    switch (e.unOp) {
    case UnOp::Neg: op = EOp::Neg; break;
    case UnOp::Sqrt: op = EOp::Sqrt; break;
    case UnOp::Abs: op = EOp::Abs; break;
    }
    out.push_back({op, 0});
    return;
  }
  }
  MOTUNE_CHECK_MSG(false, "unreachable expression kind");
}

void CompiledProgram::compileStmt(const Stmt& s) {
  if (s.kind == Stmt::Kind::Assign) {
    const Assign& a = s.assign;
    AssignOp op;
    // Compile the RHS tape first so its Load accesses are numbered in
    // evaluation order (reads before the target access, as the tree
    // walker traces them).
    std::vector<EInstr> tape;
    int depth = 0, maxDepth = 0;
    compileExpr(*a.rhs, tape, depth, maxDepth);
    maxStackDepth_ = std::max(maxStackDepth_, maxDepth);
    op.exprFirst = static_cast<std::uint32_t>(tape_.size());
    op.exprCount = static_cast<std::uint32_t>(tape.size());
    tape_.insert(tape_.end(), tape.begin(), tape.end());
    op.access = compileAccess(a.array, a.subscripts);
    op.accumulate = a.accumulate;
    assigns_.push_back(op);
    ops_.push_back(
        {OpKind::Assign, static_cast<std::uint32_t>(assigns_.size()) - 1});
    return;
  }

  const Loop& loop = s.loop;
  LoopOp op;
  op.ivSlot = ivSlot(loop.iv);
  op.boundSlot = numBoundSlots_++;
  op.lower = compileAffine(loop.lower);
  op.upperBase = compileAffine(loop.upper.base);
  if (loop.upper.cap) {
    // Constant-fold min(base, cap) once at compile time when both sides
    // are constant; otherwise keep the cap for per-entry evaluation.
    if (loop.upper.base.isConstant() && loop.upper.cap->isConstant()) {
      affines_[op.upperBase].c0 = std::min(loop.upper.base.constantTerm(),
                                           loop.upper.cap->constantTerm());
    } else {
      op.upperCap = compileAffine(*loop.upper.cap);
    }
  }
  op.step = loop.step;
  const std::uint32_t loopIdx = static_cast<std::uint32_t>(loops_.size());
  loops_.push_back(op);
  const std::uint32_t beginPc = static_cast<std::uint32_t>(ops_.size());
  ops_.push_back({OpKind::LoopBegin, loopIdx});
  for (const auto& child : loop.body) compileStmt(*child);
  ops_.push_back({OpKind::LoopEnd, loopIdx});
  loops_[loopIdx].bodyPc = beginPc + 1;
  loops_[loopIdx].exitPc = static_cast<std::uint32_t>(ops_.size());
}

std::vector<double>& CompiledProgram::array(const std::string& name) {
  auto it = arraySlots_.find(name);
  MOTUNE_CHECK_MSG(it != arraySlots_.end(), "unknown array: " + name);
  return arrays_[it->second].data;
}

const std::vector<double>&
CompiledProgram::array(const std::string& name) const {
  auto it = arraySlots_.find(name);
  MOTUNE_CHECK_MSG(it != arraySlots_.end(), "unknown array: " + name);
  return arrays_[it->second].data;
}

void CompiledProgram::setTrace(TraceFn trace) {
  trace_ = std::move(trace);
  batchTrace_ = nullptr;
  traceMode_ = trace_ ? TraceMode::PerAccess : TraceMode::None;
}

void CompiledProgram::setBatchTrace(BatchTraceFn trace) {
  batchTrace_ = std::move(trace);
  trace_ = nullptr;
  traceMode_ = batchTrace_ ? TraceMode::Batched : TraceMode::None;
  if (traceMode_ == TraceMode::Batched) traceBuffer_.reserve(kTraceBatch);
}

std::int64_t CompiledProgram::evalAffine(std::uint32_t id) const {
  const AffineFn& fn = affines_[id];
  std::int64_t v = fn.c0;
  const AffineTerm* term = affineTerms_.data() + fn.first;
  for (std::uint32_t i = 0; i < fn.count; ++i, ++term)
    v += term->coeff * ivRegs_[term->slot];
  return v;
}

std::size_t CompiledProgram::evalIndex(const Access& access) const {
  const ArrayInfo& arr = arrays_[access.arraySlot];
  std::int64_t idx = 0;
  for (std::uint32_t d = 0; d < access.numSubs; ++d) {
    const std::int64_t s = evalAffine(subscripts_[access.firstSub + d]);
    MOTUNE_CHECK_MSG(s >= 0 && s < arr.dims[d],
                     "out-of-bounds access to array " + arr.name);
    idx = idx * arr.dims[d] + s;
  }
  return static_cast<std::size_t>(idx);
}

void CompiledProgram::recordAccess(std::uint64_t addr, int bytes,
                                   bool isWrite) {
  if (traceMode_ == TraceMode::PerAccess) {
    trace_(addr, bytes, isWrite);
    return;
  }
  traceBuffer_.push_back({addr, bytes, isWrite});
  if (traceBuffer_.size() >= kTraceBatch) flushTraceBatch();
}

void CompiledProgram::flushTraceBatch() {
  if (traceBuffer_.empty()) return;
  batchTrace_(std::span<const support::MemAccess>(traceBuffer_));
  traceBuffer_.clear();
}

double CompiledProgram::evalTape(const EInstr* code, std::uint32_t count) {
  double* sp = stack_.data();
  for (std::uint32_t i = 0; i < count; ++i) {
    const EInstr in = code[i];
    switch (in.op) {
    case EOp::Const:
      *sp++ = consts_[in.arg];
      break;
    case EOp::Iv:
      *sp++ = static_cast<double>(ivRegs_[in.arg]);
      break;
    case EOp::Load: {
      const Access& access = accesses_[in.arg];
      const ArrayInfo& arr = arrays_[access.arraySlot];
      const std::size_t idx = evalIndex(access);
      if (traceMode_ != TraceMode::None)
        recordAccess(arr.baseAddr +
                         idx * static_cast<std::uint64_t>(arr.elemBytes),
                     arr.elemBytes, /*isWrite=*/false);
      *sp++ = arr.data[idx];
      break;
    }
    case EOp::Add:
      sp[-2] = sp[-2] + sp[-1];
      --sp;
      break;
    case EOp::Sub:
      sp[-2] = sp[-2] - sp[-1];
      --sp;
      break;
    case EOp::Mul:
      sp[-2] = sp[-2] * sp[-1];
      --sp;
      break;
    case EOp::Div:
      sp[-2] = sp[-2] / sp[-1];
      --sp;
      break;
    case EOp::Min:
      sp[-2] = std::min(sp[-2], sp[-1]);
      --sp;
      break;
    case EOp::Max:
      sp[-2] = std::max(sp[-2], sp[-1]);
      --sp;
      break;
    case EOp::Neg:
      sp[-1] = -sp[-1];
      break;
    case EOp::Sqrt:
      sp[-1] = std::sqrt(sp[-1]);
      break;
    case EOp::Abs:
      sp[-1] = std::abs(sp[-1]);
      break;
    }
  }
  return sp[-1];
}

void CompiledProgram::run() {
  stmtCount_ = 0;
  std::fill(ivRegs_.begin(), ivRegs_.end(), 0);
  const std::size_t n = ops_.size();
  std::size_t pc = 0;
  while (pc < n) {
    const Op op = ops_[pc];
    switch (op.kind) {
    case OpKind::LoopBegin: {
      const LoopOp& l = loops_[op.idx];
      const std::int64_t lo = evalAffine(l.lower);
      std::int64_t hi = evalAffine(l.upperBase);
      if (l.upperCap != kNone) hi = std::min(hi, evalAffine(l.upperCap));
      if (lo >= hi) {
        pc = l.exitPc;
        break;
      }
      ivRegs_[l.ivSlot] = lo;
      boundRegs_[l.boundSlot] = hi;
      ++pc;
      break;
    }
    case OpKind::LoopEnd: {
      const LoopOp& l = loops_[op.idx];
      const std::int64_t v = ivRegs_[l.ivSlot] + l.step;
      if (v < boundRegs_[l.boundSlot]) {
        ivRegs_[l.ivSlot] = v;
        pc = l.bodyPc;
      } else {
        ++pc;
      }
      break;
    }
    case OpKind::Assign: {
      const AssignOp& a = assigns_[op.idx];
      ++stmtCount_;
      // Same order as the tree walker: RHS first (tracing its reads),
      // then the target index, then the read-modify-write trace pair.
      const double value = evalTape(tape_.data() + a.exprFirst, a.exprCount);
      const Access& access = accesses_[a.access];
      ArrayInfo& arr = arrays_[access.arraySlot];
      const std::size_t idx = evalIndex(access);
      const std::uint64_t addr =
          arr.baseAddr + idx * static_cast<std::uint64_t>(arr.elemBytes);
      if (a.accumulate) {
        if (traceMode_ != TraceMode::None)
          recordAccess(addr, arr.elemBytes, /*isWrite=*/false);
        arr.data[idx] += value;
      } else {
        arr.data[idx] = value;
      }
      if (traceMode_ != TraceMode::None)
        recordAccess(addr, arr.elemBytes, /*isWrite=*/true);
      ++pc;
      break;
    }
    }
  }
  if (traceMode_ == TraceMode::Batched) flushTraceBatch();
}

} // namespace motune::ir
