#include "ir/interp.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::ir {

namespace {
constexpr std::uint64_t kPageAlign = 4096;

std::uint64_t alignUp(std::uint64_t x) {
  return (x + kPageAlign - 1) / kPageAlign * kPageAlign;
}
} // namespace

Interpreter::Interpreter(const Program& program)
    : program_(program.clone()) {
  std::uint64_t nextBase = kPageAlign;
  for (const auto& decl : program_.arrays) {
    Storage st;
    st.decl = &decl;
    st.data.assign(static_cast<std::size_t>(decl.elements()), 0.0);
    st.baseAddr = nextBase;
    nextBase = alignUp(nextBase + static_cast<std::uint64_t>(decl.bytes()));
    storage_.emplace(decl.name, std::move(st));
  }
}

std::vector<double>& Interpreter::array(const std::string& name) {
  auto it = storage_.find(name);
  MOTUNE_CHECK_MSG(it != storage_.end(), "unknown array: " + name);
  return it->second.data;
}

const std::vector<double>& Interpreter::array(const std::string& name) const {
  auto it = storage_.find(name);
  MOTUNE_CHECK_MSG(it != storage_.end(), "unknown array: " + name);
  return it->second.data;
}

std::size_t Interpreter::flatIndex(const Storage& st,
                                   const std::vector<AffineExpr>& subs,
                                   const Env& env) {
  const auto& dims = st.decl->dims;
  MOTUNE_CHECK_MSG(subs.size() == dims.size(),
                   "subscript rank mismatch for array " + st.decl->name);
  std::int64_t idx = 0;
  for (std::size_t d = 0; d < dims.size(); ++d) {
    const std::int64_t s = subs[d].eval(env);
    MOTUNE_CHECK_MSG(s >= 0 && s < dims[d],
                     "out-of-bounds access to array " + st.decl->name);
    idx = idx * dims[d] + s;
  }
  return static_cast<std::size_t>(idx);
}

double Interpreter::evalExpr(const Expr& e, const Env& env) {
  switch (e.kind) {
  case Expr::Kind::Const:
    return e.constant;
  case Expr::Kind::IvRef:
    return static_cast<double>(env.get(e.iv));
  case Expr::Kind::Read: {
    auto it = storage_.find(e.array);
    MOTUNE_CHECK_MSG(it != storage_.end(), "unknown array: " + e.array);
    const Storage& st = it->second;
    const std::size_t idx = flatIndex(st, e.subscripts, env);
    if (trace_)
      trace_(st.baseAddr + idx * static_cast<std::uint64_t>(st.decl->elemBytes),
             st.decl->elemBytes, /*isWrite=*/false);
    return st.data[idx];
  }
  case Expr::Kind::Binary: {
    const double a = evalExpr(*e.lhs, env);
    const double b = evalExpr(*e.rhs, env);
    switch (e.binOp) {
    case BinOp::Add: return a + b;
    case BinOp::Sub: return a - b;
    case BinOp::Mul: return a * b;
    case BinOp::Div: return a / b;
    case BinOp::Min: return std::min(a, b);
    case BinOp::Max: return std::max(a, b);
    }
    break;
  }
  case Expr::Kind::Unary: {
    const double a = evalExpr(*e.lhs, env);
    switch (e.unOp) {
    case UnOp::Neg: return -a;
    case UnOp::Sqrt: return std::sqrt(a);
    case UnOp::Abs: return std::abs(a);
    }
    break;
  }
  }
  MOTUNE_CHECK_MSG(false, "unreachable expression kind");
  return 0.0;
}

void Interpreter::execAssign(const Assign& a, Env& env) {
  ++stmtCount_;
  auto it = storage_.find(a.array);
  MOTUNE_CHECK_MSG(it != storage_.end(), "unknown array: " + a.array);
  Storage& st = it->second;
  const double value = evalExpr(*a.rhs, env);
  const std::size_t idx = flatIndex(st, a.subscripts, env);
  const std::uint64_t addr =
      st.baseAddr + idx * static_cast<std::uint64_t>(st.decl->elemBytes);
  if (a.accumulate) {
    if (trace_) trace_(addr, st.decl->elemBytes, /*isWrite=*/false);
    st.data[idx] += value;
  } else {
    st.data[idx] = value;
  }
  if (trace_) trace_(addr, st.decl->elemBytes, /*isWrite=*/true);
}

void Interpreter::execLoop(const Loop& loop, Env& env) {
  const std::int64_t lo = loop.lower.eval(env);
  const std::int64_t hi = loop.upper.eval(env);
  for (std::int64_t v = lo; v < hi; v += loop.step) {
    env.set(loop.iv, v);
    for (const auto& child : loop.body) execStmt(*child, env);
  }
}

void Interpreter::execStmt(const Stmt& s, Env& env) {
  if (s.kind == Stmt::Kind::Loop)
    execLoop(s.loop, env);
  else
    execAssign(s.assign, env);
}

void Interpreter::run() {
  stmtCount_ = 0;
  Env env;
  for (const auto& s : program_.body) execStmt(*s, env);
}

} // namespace motune::ir
