// Value expressions: the scalar computation inside loop bodies.
//
// Expressions form an immutable tree (shared_ptr<const Expr>); subtrees can
// therefore be shared freely between program versions produced by the
// transformation pipeline.
#pragma once

#include "ir/affine.h"

#include <memory>
#include <string>
#include <vector>

namespace motune::ir {

enum class BinOp { Add, Sub, Mul, Div, Min, Max };
enum class UnOp { Neg, Sqrt, Abs };

struct Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// A scalar double-valued expression node.
struct Expr {
  enum class Kind { Const, IvRef, Read, Binary, Unary };

  Kind kind;

  // Kind::Const
  double constant = 0.0;
  // Kind::IvRef — the induction variable's integer value as a double
  std::string iv;
  // Kind::Read — A[sub0][sub1]...
  std::string array;
  std::vector<AffineExpr> subscripts;
  // Kind::Binary / Kind::Unary
  BinOp binOp = BinOp::Add;
  UnOp unOp = UnOp::Neg;
  ExprPtr lhs;
  ExprPtr rhs;

  /// Substitutes induction variable `name` inside subscripts and IvRefs.
  ExprPtr substitute(const std::string& name, const AffineExpr& repl) const;
};

// Construction helpers — these make kernel builders read like the code they
// describe (see src/kernels/irbuilders.cpp).
ExprPtr constant(double v);
ExprPtr ivRef(const std::string& name);
ExprPtr read(const std::string& array, std::vector<AffineExpr> subs);
ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr unary(UnOp op, ExprPtr operand);

inline ExprPtr operator+(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Add, std::move(a), std::move(b));
}
inline ExprPtr operator-(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Sub, std::move(a), std::move(b));
}
inline ExprPtr operator*(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Mul, std::move(a), std::move(b));
}
inline ExprPtr operator/(ExprPtr a, ExprPtr b) {
  return binary(BinOp::Div, std::move(a), std::move(b));
}
ExprPtr sqrtOf(ExprPtr x);

} // namespace motune::ir
