#include "ir/simplify.h"

#include "support/check.h"

#include <cmath>

namespace motune::ir {

namespace {

bool isConst(const ExprPtr& e, double v) {
  return e->kind == Expr::Kind::Const && e->constant == v;
}

void simplifyStmt(Stmt& s) {
  if (s.kind == Stmt::Kind::Assign) {
    s.assign.rhs = simplify(s.assign.rhs);
    return;
  }
  for (auto& child : s.loop.body) simplifyStmt(*child);
}

} // namespace

ExprPtr simplify(const ExprPtr& e) {
  MOTUNE_CHECK(e != nullptr);
  switch (e->kind) {
  case Expr::Kind::Const:
  case Expr::Kind::IvRef:
  case Expr::Kind::Read:
    return e;
  case Expr::Kind::Unary: {
    ExprPtr operand = simplify(e->lhs);
    if (operand->kind == Expr::Kind::Const) {
      const double v = operand->constant;
      switch (e->unOp) {
      case UnOp::Neg: return constant(-v);
      case UnOp::Abs: return constant(std::abs(v));
      case UnOp::Sqrt:
        if (v >= 0.0) return constant(std::sqrt(v));
        break;
      }
    }
    // -(-x) -> x
    if (e->unOp == UnOp::Neg && operand->kind == Expr::Kind::Unary &&
        operand->unOp == UnOp::Neg)
      return operand->lhs;
    if (operand == e->lhs) return e;
    return unary(e->unOp, std::move(operand));
  }
  case Expr::Kind::Binary: {
    ExprPtr lhs = simplify(e->lhs);
    ExprPtr rhs = simplify(e->rhs);
    if (lhs->kind == Expr::Kind::Const && rhs->kind == Expr::Kind::Const) {
      const double a = lhs->constant;
      const double b = rhs->constant;
      switch (e->binOp) {
      case BinOp::Add: return constant(a + b);
      case BinOp::Sub: return constant(a - b);
      case BinOp::Mul: return constant(a * b);
      case BinOp::Div:
        if (b != 0.0) return constant(a / b);
        break;
      case BinOp::Min: return constant(std::min(a, b));
      case BinOp::Max: return constant(std::max(a, b));
      }
    }
    switch (e->binOp) {
    case BinOp::Add:
      if (isConst(lhs, 0.0)) return rhs;
      if (isConst(rhs, 0.0)) return lhs;
      break;
    case BinOp::Sub:
      if (isConst(rhs, 0.0)) return lhs;
      if (isConst(lhs, 0.0)) return unary(UnOp::Neg, std::move(rhs));
      break;
    case BinOp::Mul:
      if (isConst(lhs, 1.0)) return rhs;
      if (isConst(rhs, 1.0)) return lhs;
      if (isConst(lhs, 0.0) || isConst(rhs, 0.0)) return constant(0.0);
      break;
    case BinOp::Div:
      if (isConst(rhs, 1.0)) return lhs;
      break;
    default:
      break;
    }
    if (lhs == e->lhs && rhs == e->rhs) return e;
    return binary(e->binOp, std::move(lhs), std::move(rhs));
  }
  }
  return e;
}

void simplify(Program& p) {
  for (auto& s : p.body) simplifyStmt(*s);
}

} // namespace motune::ir
