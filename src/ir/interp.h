// Reference interpreter for IR programs.
//
// Two purposes: (1) semantic ground truth — property tests execute original
// and transformed programs and require bit-identical array contents, which
// is how tiling/collapse/unroll legality is validated end-to-end; and
// (2) memory-trace generation for the trace-driven cache simulator, which
// cross-validates the analytical performance model.
#pragma once

#include "ir/program.h"

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

namespace motune::ir {

class Interpreter {
public:
  /// Called for every array element touched: absolute byte address, size,
  /// and whether the access writes.
  using TraceFn =
      std::function<void(std::uint64_t addr, int bytes, bool isWrite)>;

  /// Takes a deep copy of the program, so temporaries are safe to pass.
  explicit Interpreter(const Program& program);

  /// Read/write access to an array's backing store (for input setup and
  /// result comparison). Arrays are zero-initialized.
  std::vector<double>& array(const std::string& name);
  const std::vector<double>& array(const std::string& name) const;

  /// Installs a memory-trace callback (pass nullptr to disable).
  void setTrace(TraceFn trace) { trace_ = std::move(trace); }

  /// Executes the whole program sequentially. Parallel markers are ignored:
  /// the loops the analyzer marks parallel are exactly those whose
  /// iterations are independent, so sequential execution is a valid
  /// schedule and keeps results deterministic.
  void run();

  /// Number of assignments executed by the last run().
  std::uint64_t statementsExecuted() const { return stmtCount_; }

private:
  struct Storage {
    const ArrayDecl* decl;
    std::vector<double> data;
    std::uint64_t baseAddr; // for trace generation
  };

  double evalExpr(const Expr& e, const Env& env);
  void execStmt(const Stmt& s, Env& env);
  void execLoop(const Loop& loop, Env& env);
  void execAssign(const Assign& a, Env& env);

  std::size_t flatIndex(const Storage& st,
                        const std::vector<AffineExpr>& subs, const Env& env);

  Program program_;
  std::unordered_map<std::string, Storage> storage_;
  TraceFn trace_;
  std::uint64_t stmtCount_ = 0;
};

} // namespace motune::ir
