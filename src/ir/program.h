// Structured loop-nest programs: the unit the analyzer, transformations,
// code generator, interpreter and performance model all operate on.
//
// This is the INSPIRE substitute of the reproduction (DESIGN.md §1):
// programs are trees of perfectly- or imperfectly-nested affine loops whose
// leaves are array assignments.
#pragma once

#include "ir/affine.h"
#include "ir/expr.h"

#include <memory>
#include <string>
#include <vector>

namespace motune::ir {

/// A dense row-major array of doubles (the kernels' element type).
struct ArrayDecl {
  std::string name;
  std::vector<std::int64_t> dims;
  int elemBytes = 8;

  std::int64_t elements() const;
  std::int64_t bytes() const { return elements() * elemBytes; }
};

/// target[subs] = rhs, or target[subs] += rhs when `accumulate` is set.
struct Assign {
  std::string array;
  std::vector<AffineExpr> subscripts;
  ExprPtr rhs;
  bool accumulate = false;
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// A counted loop: for (iv = lower; iv < upper; iv += step).
struct Loop {
  std::string iv;
  AffineExpr lower;
  Bound upper;   ///< exclusive; may carry a min() cap from tiling
  std::int64_t step = 1;
  bool parallel = false; ///< marked for work-sharing execution
  int collapse = 1;      ///< loops (incl. this one) merged for scheduling
  std::vector<StmtPtr> body;
};

/// Sum type of the two node kinds; kept flat (no virtual hierarchy) so the
/// interpreter's dispatch stays branch-predictable.
struct Stmt {
  enum class Kind { Loop, Assign };
  Kind kind;
  Loop loop;     // valid when kind == Loop
  Assign assign; // valid when kind == Assign

  static StmtPtr makeLoop(Loop l);
  static StmtPtr makeAssign(Assign a);
  StmtPtr clone() const;
};

/// A tunable code region: array declarations plus a statement list.
struct Program {
  std::string name;
  std::vector<ArrayDecl> arrays;
  std::vector<StmtPtr> body;

  Program() = default;
  Program(Program&&) = default;
  Program& operator=(Program&&) = default;

  Program clone() const;
  const ArrayDecl* findArray(const std::string& arrayName) const;

  /// The outermost loop, asserting the body is a single loop nest.
  const Loop& rootLoop() const;
  Loop& rootLoop();
};

/// Walks all statements (pre-order), calling `fn` with each Stmt and the
/// stack of enclosing loops (outermost first).
void walk(const Program& p,
          const std::function<void(const Stmt&, const std::vector<const Loop*>&)>& fn);

/// Exact trip count of a loop whose bounds are constant in `env`.
std::int64_t tripCount(const Loop& loop, const Env& env);

// Deep structural equality (expression trees compared node by node, not by
// pointer). Program names are ignored; array declarations, loop headers,
// parallel metadata and statement order all participate. Used by the
// parse/print round-trip property tests and the fuzzer's repro machinery.
bool structurallyEqual(const Expr& a, const Expr& b);
bool structurallyEqual(const Stmt& a, const Stmt& b);
bool structurallyEqual(const Program& a, const Program& b);

/// Clones `s` with every occurrence of induction variable `name` replaced
/// by the affine expression `repl` (loop bounds, subscripts and value
/// expressions alike). The fuzzer's shrinker uses this to collapse a loop
/// into a single iteration at its lower bound.
StmtPtr substituteIv(const Stmt& s, const std::string& name,
                     const AffineExpr& repl);

} // namespace motune::ir
