// Flat-bytecode execution engine for IR programs.
//
// The tree-walking Interpreter (interp.h) is the semantic reference, but it
// pays a string-keyed environment lookup per induction-variable reference,
// a hash-map lookup per array access and a recursive dispatch per
// expression node. This engine compiles a Program once into flat arrays —
// the statement tree becomes a bytecode sequence with explicit loop
// back-edges, induction variables and arrays are pre-resolved to integer
// slots, affine functions become (constant, term-list) records with
// constant bounds folded at compile time, and expression trees become
// postfix tapes evaluated on a value stack — and then executes it without
// touching a string or a node pointer.
//
// Semantics are bit-identical to the tree walker (same IEEE operation
// order, same bounds checks, same trace event sequence); the differential
// fuzz oracle runs its transformed-program leg through this engine, so
// every fuzz iteration cross-checks the two executors. Used by the fuzz
// oracle and by cache-simulator trace generation (tuning/validation.cpp).
#pragma once

#include "ir/program.h"
#include "support/mem_access.h"

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace motune::ir {

class CompiledProgram {
public:
  /// Per-access trace callback, identical in contract to
  /// Interpreter::TraceFn: absolute byte address, size, write flag.
  using TraceFn =
      std::function<void(std::uint64_t addr, int bytes, bool isWrite)>;

  /// Batched trace callback: accesses are buffered and delivered in flat
  /// spans (up to kTraceBatch records per call), so the consumer pays one
  /// indirect call per batch instead of one per access.
  using BatchTraceFn = std::function<void(std::span<const support::MemAccess>)>;

  /// Trace records per batch delivered through a BatchTraceFn.
  static constexpr std::size_t kTraceBatch = 4096;

  /// Compiles the program; the original Program is not retained.
  explicit CompiledProgram(const Program& program);

  /// Read/write access to an array's backing store (zero-initialized),
  /// mirroring Interpreter::array().
  std::vector<double>& array(const std::string& name);
  const std::vector<double>& array(const std::string& name) const;

  /// Installs a per-access trace callback (pass nullptr to disable).
  /// Mutually exclusive with setBatchTrace.
  void setTrace(TraceFn trace);

  /// Installs a batched trace callback (pass nullptr to disable). Batches
  /// are flushed when full and at the end of run(). Mutually exclusive
  /// with setTrace.
  void setBatchTrace(BatchTraceFn trace);

  /// Executes the whole program sequentially (parallel markers ignored,
  /// exactly as the tree walker does).
  void run();

  /// Number of assignments executed by the last run().
  std::uint64_t statementsExecuted() const { return stmtCount_; }

  /// Bytecode size (ops), for tests and diagnostics.
  std::size_t opCount() const { return ops_.size(); }

private:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  // value = c0 + sum over terms (coeff * ivRegs[slot]); count == 0 means
  // the affine function folded to a compile-time constant.
  struct AffineTerm {
    std::uint32_t slot = 0;
    std::int64_t coeff = 0;
  };
  struct AffineFn {
    std::int64_t c0 = 0;
    std::uint32_t first = 0;
    std::uint32_t count = 0;
  };

  // Postfix expression tape over a value stack.
  enum class EOp : std::uint8_t {
    Const, // push consts_[arg]
    Iv,    // push double(ivRegs[arg])
    Load,  // push array element, accesses_[arg]
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    Neg,
    Sqrt,
    Abs,
  };
  struct EInstr {
    EOp op;
    std::uint32_t arg = 0;
  };

  // One array reference: slot + affine subscripts (rank of the array).
  struct Access {
    std::uint32_t arraySlot = 0;
    std::uint32_t firstSub = 0;
    std::uint32_t numSubs = 0;
  };

  struct LoopOp {
    std::uint32_t ivSlot = 0;
    std::uint32_t boundSlot = 0;
    std::uint32_t lower = 0;     // affine id
    std::uint32_t upperBase = 0; // affine id
    std::uint32_t upperCap = kNone;
    std::int64_t step = 1;
    std::uint32_t exitPc = 0; // LoopBegin: first op after the loop
    std::uint32_t bodyPc = 0; // LoopEnd: first op of the body
  };
  struct AssignOp {
    std::uint32_t access = 0;
    std::uint32_t exprFirst = 0;
    std::uint32_t exprCount = 0;
    bool accumulate = false;
  };

  enum class OpKind : std::uint8_t { LoopBegin, LoopEnd, Assign };
  struct Op {
    OpKind kind;
    std::uint32_t idx;
  };

  struct ArrayInfo {
    std::string name;
    std::vector<std::int64_t> dims;
    int elemBytes = 8;
    std::uint64_t baseAddr = 0;
    std::vector<double> data;
  };

  enum class TraceMode : std::uint8_t { None, PerAccess, Batched };

  // --- compilation ---
  std::uint32_t ivSlot(const std::string& name);
  std::uint32_t compileAffine(const AffineExpr& e);
  std::uint32_t compileAccess(const std::string& arrayName,
                              const std::vector<AffineExpr>& subs);
  void compileExpr(const Expr& e, std::vector<EInstr>& out, int& depth,
                   int& maxDepth);
  void compileStmt(const Stmt& s);

  // --- execution ---
  std::int64_t evalAffine(std::uint32_t id) const;
  std::size_t evalIndex(const Access& access) const;
  double evalTape(const EInstr* code, std::uint32_t count);
  void recordAccess(std::uint64_t addr, int bytes, bool isWrite);
  void flushTraceBatch();

  // compiled form
  std::vector<ArrayInfo> arrays_;
  std::unordered_map<std::string, std::uint32_t> arraySlots_;
  std::unordered_map<std::string, std::uint32_t> ivSlots_;
  std::vector<AffineTerm> affineTerms_;
  std::vector<AffineFn> affines_;
  std::vector<std::uint32_t> subscripts_; // affine ids, per access
  std::vector<Access> accesses_;
  std::vector<double> consts_;
  std::vector<EInstr> tape_;
  std::vector<LoopOp> loops_;
  std::vector<AssignOp> assigns_;
  std::vector<Op> ops_;
  std::uint32_t numBoundSlots_ = 0;
  int maxStackDepth_ = 0;

  // execution state
  std::vector<std::int64_t> ivRegs_;
  std::vector<std::int64_t> boundRegs_;
  std::vector<double> stack_;
  std::uint64_t stmtCount_ = 0;

  TraceMode traceMode_ = TraceMode::None;
  TraceFn trace_;
  BatchTraceFn batchTrace_;
  std::vector<support::MemAccess> traceBuffer_;
};

} // namespace motune::ir
