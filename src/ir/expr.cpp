#include "ir/expr.h"

namespace motune::ir {

ExprPtr constant(double v) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Const;
  e->constant = v;
  return e;
}

ExprPtr ivRef(const std::string& name) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::IvRef;
  e->iv = name;
  return e;
}

ExprPtr read(const std::string& array, std::vector<AffineExpr> subs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Read;
  e->array = array;
  e->subscripts = std::move(subs);
  return e;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Binary;
  e->binOp = op;
  e->lhs = std::move(lhs);
  e->rhs = std::move(rhs);
  return e;
}

ExprPtr unary(UnOp op, ExprPtr operand) {
  auto e = std::make_shared<Expr>();
  e->kind = Expr::Kind::Unary;
  e->unOp = op;
  e->lhs = std::move(operand);
  return e;
}

ExprPtr sqrtOf(ExprPtr x) { return unary(UnOp::Sqrt, std::move(x)); }

ExprPtr Expr::substitute(const std::string& name,
                         const AffineExpr& repl) const {
  switch (kind) {
  case Kind::Const:
    return std::make_shared<Expr>(*this);
  case Kind::IvRef: {
    if (iv != name) return std::make_shared<Expr>(*this);
    // Only a plain variable or constant replacement keeps an IvRef valid;
    // general affine replacements are not needed for IvRefs in practice
    // (unrolling replaces iv with iv + const, handled below).
    auto out = std::make_shared<Expr>(*this);
    if (repl.isConstant()) {
      out->kind = Kind::Const;
      out->constant = static_cast<double>(repl.constantTerm());
      out->iv.clear();
      return out;
    }
    // iv -> a*iv' + c is representable as an expression tree.
    const auto& terms = repl.terms();
    ExprPtr acc = ::motune::ir::constant(
        static_cast<double>(repl.constantTerm()));
    for (const auto& [var, coeff] : terms) {
      ExprPtr term = ivRef(var);
      if (coeff != 1)
        term = binary(BinOp::Mul,
                      ::motune::ir::constant(static_cast<double>(coeff)),
                      term);
      acc = binary(BinOp::Add, acc, term);
    }
    return acc;
  }
  case Kind::Read: {
    auto out = std::make_shared<Expr>(*this);
    for (auto& sub : out->subscripts) sub = sub.substitute(name, repl);
    return out;
  }
  case Kind::Binary: {
    auto out = std::make_shared<Expr>(*this);
    out->lhs = lhs->substitute(name, repl);
    out->rhs = rhs->substitute(name, repl);
    return out;
  }
  case Kind::Unary: {
    auto out = std::make_shared<Expr>(*this);
    out->lhs = lhs->substitute(name, repl);
    return out;
  }
  }
  return nullptr; // unreachable
}

} // namespace motune::ir
