#include "ir/parse.h"

#include "support/check.h"

#include <cctype>
#include <optional>

namespace motune::ir {

namespace {

// --- lexer -------------------------------------------------------------

enum class Tok {
  End,
  Ident,
  Number,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  LParen,
  RParen,
  Assign,     // =
  PlusAssign, // +=
  Plus,
  Minus,
  Star,
  Slash,
  Semicolon,
  Comma,
  DotDot, // ..
};

struct Token {
  Tok kind = Tok::End;
  std::string text;
  double number = 0.0;
  int line = 1;
  int column = 1;
};

class Lexer {
public:
  explicit Lexer(const std::string& source) : src_(source) { advance(); }

  const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& message) const {
    MOTUNE_CHECK_MSG(false, message + " at line " +
                                std::to_string(current_.line) + ", column " +
                                std::to_string(current_.column));
    std::abort(); // unreachable
  }

private:
  void skipWsAndComments() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])) != 0)
        bump();
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
        continue;
      }
      return;
    }
  }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void advance() {
    skipWsAndComments();
    current_ = Token{};
    current_.line = line_;
    current_.column = column_;
    if (pos_ >= src_.size()) {
      current_.kind = Tok::End;
      return;
    }
    const char c = src_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_') {
      std::string ident;
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) != 0 ||
              src_[pos_] == '_')) {
        ident += src_[pos_];
        bump();
      }
      current_.kind = Tok::Ident;
      current_.text = std::move(ident);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.') {
      if (c == '.' && pos_ + 1 < src_.size() && src_[pos_ + 1] == '.') {
        bump();
        bump();
        current_.kind = Tok::DotDot;
        return;
      }
      std::string num;
      while (pos_ < src_.size() &&
             (std::isdigit(static_cast<unsigned char>(src_[pos_])) != 0 ||
              src_[pos_] == '.' || src_[pos_] == 'e' || src_[pos_] == 'E' ||
              ((src_[pos_] == '+' || src_[pos_] == '-') && !num.empty() &&
               (num.back() == 'e' || num.back() == 'E')))) {
        // ".." terminates a number (range operator, not a decimal point).
        if (src_[pos_] == '.' && pos_ + 1 < src_.size() &&
            src_[pos_ + 1] == '.')
          break;
        num += src_[pos_];
        bump();
      }
      current_.kind = Tok::Number;
      try {
        current_.number = std::stod(num);
      } catch (const std::exception&) {
        fail("invalid number '" + num + "'");
      }
      current_.text = std::move(num);
      return;
    }
    bump();
    switch (c) {
    case '[': current_.kind = Tok::LBracket; return;
    case ']': current_.kind = Tok::RBracket; return;
    case '{': current_.kind = Tok::LBrace; return;
    case '}': current_.kind = Tok::RBrace; return;
    case '(': current_.kind = Tok::LParen; return;
    case ')': current_.kind = Tok::RParen; return;
    case ';': current_.kind = Tok::Semicolon; return;
    case ',': current_.kind = Tok::Comma; return;
    case '-': current_.kind = Tok::Minus; return;
    case '*': current_.kind = Tok::Star; return;
    case '/': current_.kind = Tok::Slash; return;
    case '=': current_.kind = Tok::Assign; return;
    case '+':
      if (pos_ < src_.size() && src_[pos_] == '=') {
        bump();
        current_.kind = Tok::PlusAssign;
        return;
      }
      current_.kind = Tok::Plus;
      return;
    default:
      fail(std::string("unexpected character '") + c + "'");
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
  Token current_;
};

// --- parser ------------------------------------------------------------

class ProgramParser {
public:
  ProgramParser(const std::string& source, std::string name)
      : lexer_(source), name_(std::move(name)) {}

  Program parse() {
    Program p;
    p.name = name_;
    arrays_ = &p.arrays;
    while (isIdent("array")) p.arrays.push_back(arrayDecl());
    MOTUNE_CHECK_MSG(!p.arrays.empty(), "program declares no arrays");
    while (isIdent("for")) p.body.push_back(forLoop());
    if (lexer_.peek().kind != Tok::End)
      lexer_.fail("expected 'for' or end of input");
    MOTUNE_CHECK_MSG(!p.body.empty(), "program has no loops");
    return p;
  }

private:
  bool isIdent(const std::string& word) const {
    return lexer_.peek().kind == Tok::Ident && lexer_.peek().text == word;
  }

  Token expect(Tok kind, const std::string& what) {
    if (lexer_.peek().kind != kind) lexer_.fail("expected " + what);
    return lexer_.take();
  }

  const ArrayDecl* findArray(const std::string& name) const {
    for (const auto& a : *arrays_)
      if (a.name == name) return &a;
    return nullptr;
  }

  bool isLoopVar(const std::string& name) const {
    for (const auto& iv : loopVars_)
      if (iv == name) return true;
    return false;
  }

  ArrayDecl arrayDecl() {
    lexer_.take(); // 'array'
    ArrayDecl decl;
    decl.name = expect(Tok::Ident, "array name").text;
    if (findArray(decl.name) != nullptr)
      lexer_.fail("duplicate array '" + decl.name + "'");
    while (lexer_.peek().kind == Tok::LBracket) {
      lexer_.take();
      const Token dim = expect(Tok::Number, "array dimension");
      const auto size = static_cast<std::int64_t>(dim.number);
      if (size < 1 || static_cast<double>(size) != dim.number)
        lexer_.fail("array dimensions must be positive integers");
      decl.dims.push_back(size);
      expect(Tok::RBracket, "']'");
    }
    if (decl.dims.empty()) lexer_.fail("array needs at least one dimension");
    return decl;
  }

  StmtPtr forLoop() {
    lexer_.take(); // 'for'
    Loop loop;
    loop.iv = expect(Tok::Ident, "loop variable").text;
    if (isLoopVar(loop.iv)) lexer_.fail("duplicate loop variable " + loop.iv);
    expect(Tok::Assign, "'='");
    loop.lower = affine();
    expect(Tok::DotDot, "'..'");
    loop.upper = Bound(affine());
    expect(Tok::LBrace, "'{'");
    loopVars_.push_back(loop.iv);
    while (lexer_.peek().kind != Tok::RBrace) {
      if (isIdent("for"))
        loop.body.push_back(forLoop());
      else
        loop.body.push_back(assign());
    }
    lexer_.take(); // '}'
    loopVars_.pop_back();
    if (loop.body.empty()) lexer_.fail("empty loop body");
    return Stmt::makeLoop(std::move(loop));
  }

  StmtPtr assign() {
    Assign st;
    const Token target = expect(Tok::Ident, "assignment target");
    st.array = target.text;
    const ArrayDecl* decl = findArray(st.array);
    if (decl == nullptr) lexer_.fail("unknown array '" + st.array + "'");
    st.subscripts = subscripts(*decl);
    if (lexer_.peek().kind == Tok::PlusAssign) {
      st.accumulate = true;
      lexer_.take();
    } else {
      expect(Tok::Assign, "'=' or '+='");
    }
    st.rhs = expr();
    expect(Tok::Semicolon, "';'");
    return Stmt::makeAssign(std::move(st));
  }

  std::vector<AffineExpr> subscripts(const ArrayDecl& decl) {
    std::vector<AffineExpr> subs;
    while (lexer_.peek().kind == Tok::LBracket) {
      lexer_.take();
      subs.push_back(affine());
      expect(Tok::RBracket, "']'");
    }
    if (subs.size() != decl.dims.size())
      lexer_.fail("array '" + decl.name + "' has " +
                  std::to_string(decl.dims.size()) + " dimension(s), got " +
                  std::to_string(subs.size()) + " subscript(s)");
    return subs;
  }

  // Affine expressions: +, -, and multiplication by integer constants.
  AffineExpr affine() { return affineSum(); }

  AffineExpr affineSum() {
    AffineExpr acc = affineTerm();
    for (;;) {
      if (lexer_.peek().kind == Tok::Plus) {
        lexer_.take();
        acc = acc + affineTerm();
      } else if (lexer_.peek().kind == Tok::Minus) {
        lexer_.take();
        acc = acc - affineTerm();
      } else {
        return acc;
      }
    }
  }

  AffineExpr affineTerm() {
    AffineExpr acc = affineFactor();
    while (lexer_.peek().kind == Tok::Star) {
      lexer_.take();
      const AffineExpr rhs = affineFactor();
      if (acc.isConstant())
        acc = rhs * acc.constantTerm();
      else if (rhs.isConstant())
        acc = acc * rhs.constantTerm();
      else
        lexer_.fail("non-affine product of two variables");
    }
    return acc;
  }

  AffineExpr affineFactor() {
    const Token& t = lexer_.peek();
    if (t.kind == Tok::Minus) {
      lexer_.take();
      return affineFactor() * -1;
    }
    if (t.kind == Tok::Number) {
      const Token num = lexer_.take();
      const auto v = static_cast<std::int64_t>(num.number);
      if (static_cast<double>(v) != num.number)
        lexer_.fail("affine expressions need integer constants");
      return AffineExpr::constant(v);
    }
    if (t.kind == Tok::Ident) {
      const Token id = lexer_.take();
      if (!isLoopVar(id.text))
        lexer_.fail("'" + id.text + "' is not a loop variable in scope");
      return AffineExpr::var(id.text);
    }
    if (t.kind == Tok::LParen) {
      lexer_.take();
      const AffineExpr inner = affineSum();
      expect(Tok::RParen, "')'");
      return inner;
    }
    lexer_.fail("expected an affine expression");
    return {};
  }

  // Value expressions.
  ExprPtr expr() {
    ExprPtr acc = term();
    for (;;) {
      if (lexer_.peek().kind == Tok::Plus) {
        lexer_.take();
        acc = binary(BinOp::Add, acc, term());
      } else if (lexer_.peek().kind == Tok::Minus) {
        lexer_.take();
        acc = binary(BinOp::Sub, acc, term());
      } else {
        return acc;
      }
    }
  }

  ExprPtr term() {
    ExprPtr acc = factor();
    for (;;) {
      if (lexer_.peek().kind == Tok::Star) {
        lexer_.take();
        acc = binary(BinOp::Mul, acc, factor());
      } else if (lexer_.peek().kind == Tok::Slash) {
        lexer_.take();
        acc = binary(BinOp::Div, acc, factor());
      } else {
        return acc;
      }
    }
  }

  ExprPtr factor() {
    const Token& t = lexer_.peek();
    if (t.kind == Tok::Minus) {
      lexer_.take();
      // Fold `-NUMBER` into a negative constant (exact for doubles), so
      // printSource's rendering of negative constants round-trips to the
      // identical expression tree.
      if (lexer_.peek().kind == Tok::Number)
        return constant(-lexer_.take().number);
      return unary(UnOp::Neg, factor());
    }
    if (t.kind == Tok::Number) return constant(lexer_.take().number);
    if (t.kind == Tok::LParen) {
      lexer_.take();
      ExprPtr inner = expr();
      expect(Tok::RParen, "')'");
      return inner;
    }
    if (t.kind == Tok::Ident) {
      const Token id = lexer_.take();
      if (id.text == "sqrt" || id.text == "abs") {
        expect(Tok::LParen, "'('");
        ExprPtr arg = expr();
        expect(Tok::RParen, "')'");
        return unary(id.text == "sqrt" ? UnOp::Sqrt : UnOp::Abs,
                     std::move(arg));
      }
      if (id.text == "min" || id.text == "max") {
        expect(Tok::LParen, "'('");
        ExprPtr a = expr();
        expect(Tok::Comma, "','");
        ExprPtr b = expr();
        expect(Tok::RParen, "')'");
        return binary(id.text == "min" ? BinOp::Min : BinOp::Max,
                      std::move(a), std::move(b));
      }
      if (const ArrayDecl* decl = findArray(id.text))
        return read(id.text, subscripts(*decl));
      if (isLoopVar(id.text)) return ivRef(id.text);
      lexer_.fail("unknown identifier '" + id.text + "'");
    }
    lexer_.fail("expected an expression");
    return nullptr;
  }

  Lexer lexer_;
  std::string name_;
  const std::vector<ArrayDecl>* arrays_ = nullptr;
  std::vector<std::string> loopVars_;
};

} // namespace

Program parseProgram(const std::string& source, const std::string& name) {
  ProgramParser parser(source, name);
  return parser.parse();
}

} // namespace motune::ir
