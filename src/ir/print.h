// C-like pretty printing of IR programs; the code generator builds on this.
#pragma once

#include "ir/program.h"

#include <string>

namespace motune::ir {

/// Renders an expression as C source.
std::string toC(const Expr& e);

/// Renders a statement (loop nest or assignment) as indented C source.
/// `emitPragmas` controls whether parallel loops carry an OpenMP pragma.
std::string toC(const Stmt& s, int indent = 0, bool emitPragmas = true);

/// Renders the whole program body (no function wrapper; see codegen/).
std::string toC(const Program& p, bool emitPragmas = true);

/// Renders a program in the textual kernel language accepted by
/// ir::parseProgram (parse.h), such that
/// `structurallyEqual(parseProgram(printSource(p)), p)` holds — the
/// round-trip the fuzzer's repro files rely on. Requires a source-language
/// program: every loop must have step 1 and a cap-free upper bound
/// (i.e. untransformed); parallel markers are not representable and are
/// rejected. Floating-point constants are printed with enough digits to
/// round-trip exactly.
std::string printSource(const Program& p);

} // namespace motune::ir
