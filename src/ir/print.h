// C-like pretty printing of IR programs; the code generator builds on this.
#pragma once

#include "ir/program.h"

#include <string>

namespace motune::ir {

/// Renders an expression as C source.
std::string toC(const Expr& e);

/// Renders a statement (loop nest or assignment) as indented C source.
/// `emitPragmas` controls whether parallel loops carry an OpenMP pragma.
std::string toC(const Stmt& s, int indent = 0, bool emitPragmas = true);

/// Renders the whole program body (no function wrapper; see codegen/).
std::string toC(const Program& p, bool emitPragmas = true);

} // namespace motune::ir
