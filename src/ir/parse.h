// Textual frontend: parses a small C-like kernel language into IR.
//
// This replaces the Insieme C/OpenMP frontend for user-supplied kernels —
// everything the analyzer/transformations/codegen accept can be written as
// text and fed to the framework (see `motune tune --source FILE`):
//
//     # jacobi sweep (comments run to end of line)
//     array A[1024][1024]
//     array B[1024][1024]
//     for i = 1 .. 1023 {
//       for j = 1 .. 1023 {
//         B[i][j] = 0.25 * (A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1]);
//       }
//     }
//
// Grammar (EBNF, whitespace-insensitive, '#' comments):
//   program    := { arrayDecl } { forLoop }
//   arrayDecl  := "array" IDENT "[" INT "]" { "[" INT "]" }
//   forLoop    := "for" IDENT "=" affine ".." affine "{" { stmt } "}"
//   stmt       := forLoop | assign
//   assign     := IDENT subscripts ("=" | "+=") expr ";"
//   subscripts := "[" affine "]" { "[" affine "]" }
//   affine     := linear combination of INT and loop variables (+, -, *)
//   expr       := term { ("+" | "-") term }
//   term       := factor { ("*" | "/") factor }
//   factor     := NUMBER | IDENT subscripts | IDENT | "(" expr ")"
//               | ("sqrt" | "abs" | "min" | "max") "(" expr { "," expr } ")"
//               | "-" factor
//
// A bare IDENT in an expression is a loop variable reference. Loop bounds
// follow the IR convention: lower inclusive, upper exclusive.
#pragma once

#include "ir/program.h"

#include <string>

namespace motune::ir {

/// Parses a program; throws support::CheckError with line/column context
/// on any lexical, syntactic or semantic error (unknown arrays, non-affine
/// subscripts, rank mismatches, duplicate loop variables).
Program parseProgram(const std::string& source, const std::string& name = "kernel");

} // namespace motune::ir
