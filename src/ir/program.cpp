#include "ir/program.h"

#include "support/check.h"

namespace motune::ir {

std::int64_t ArrayDecl::elements() const {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

StmtPtr Stmt::makeLoop(Loop l) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Loop;
  s->loop = std::move(l);
  return s;
}

StmtPtr Stmt::makeAssign(Assign a) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Assign;
  s->assign = std::move(a);
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  if (kind == Kind::Assign) {
    s->assign = assign; // ExprPtr subtree is immutable and shared
  } else {
    s->loop.iv = loop.iv;
    s->loop.lower = loop.lower;
    s->loop.upper = loop.upper;
    s->loop.step = loop.step;
    s->loop.parallel = loop.parallel;
    s->loop.collapse = loop.collapse;
    s->loop.body.reserve(loop.body.size());
    for (const auto& child : loop.body) s->loop.body.push_back(child->clone());
  }
  return s;
}

Program Program::clone() const {
  Program p;
  p.name = name;
  p.arrays = arrays;
  p.body.reserve(body.size());
  for (const auto& s : body) p.body.push_back(s->clone());
  return p;
}

const ArrayDecl* Program::findArray(const std::string& arrayName) const {
  for (const auto& a : arrays)
    if (a.name == arrayName) return &a;
  return nullptr;
}

const Loop& Program::rootLoop() const {
  MOTUNE_CHECK_MSG(body.size() == 1 && body.front()->kind == Stmt::Kind::Loop,
                   "program body must be a single loop nest");
  return body.front()->loop;
}

Loop& Program::rootLoop() {
  MOTUNE_CHECK_MSG(body.size() == 1 && body.front()->kind == Stmt::Kind::Loop,
                   "program body must be a single loop nest");
  return body.front()->loop;
}

namespace {
void walkStmt(const Stmt& s, std::vector<const Loop*>& stack,
              const std::function<void(const Stmt&,
                                       const std::vector<const Loop*>&)>& fn) {
  fn(s, stack);
  if (s.kind == Stmt::Kind::Loop) {
    stack.push_back(&s.loop);
    for (const auto& child : s.loop.body) walkStmt(*child, stack, fn);
    stack.pop_back();
  }
}
} // namespace

void walk(const Program& p,
          const std::function<void(const Stmt&,
                                   const std::vector<const Loop*>&)>& fn) {
  std::vector<const Loop*> stack;
  for (const auto& s : p.body) walkStmt(*s, stack, fn);
}

std::int64_t tripCount(const Loop& loop, const Env& env) {
  const std::int64_t lo = loop.lower.eval(env);
  const std::int64_t hi = loop.upper.eval(env);
  if (hi <= lo) return 0;
  return (hi - lo + loop.step - 1) / loop.step;
}

} // namespace motune::ir
