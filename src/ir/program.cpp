#include "ir/program.h"

#include "support/check.h"

namespace motune::ir {

std::int64_t ArrayDecl::elements() const {
  std::int64_t n = 1;
  for (auto d : dims) n *= d;
  return n;
}

StmtPtr Stmt::makeLoop(Loop l) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Loop;
  s->loop = std::move(l);
  return s;
}

StmtPtr Stmt::makeAssign(Assign a) {
  auto s = std::make_unique<Stmt>();
  s->kind = Kind::Assign;
  s->assign = std::move(a);
  return s;
}

StmtPtr Stmt::clone() const {
  auto s = std::make_unique<Stmt>();
  s->kind = kind;
  if (kind == Kind::Assign) {
    s->assign = assign; // ExprPtr subtree is immutable and shared
  } else {
    s->loop.iv = loop.iv;
    s->loop.lower = loop.lower;
    s->loop.upper = loop.upper;
    s->loop.step = loop.step;
    s->loop.parallel = loop.parallel;
    s->loop.collapse = loop.collapse;
    s->loop.body.reserve(loop.body.size());
    for (const auto& child : loop.body) s->loop.body.push_back(child->clone());
  }
  return s;
}

Program Program::clone() const {
  Program p;
  p.name = name;
  p.arrays = arrays;
  p.body.reserve(body.size());
  for (const auto& s : body) p.body.push_back(s->clone());
  return p;
}

const ArrayDecl* Program::findArray(const std::string& arrayName) const {
  for (const auto& a : arrays)
    if (a.name == arrayName) return &a;
  return nullptr;
}

const Loop& Program::rootLoop() const {
  MOTUNE_CHECK_MSG(body.size() == 1 && body.front()->kind == Stmt::Kind::Loop,
                   "program body must be a single loop nest");
  return body.front()->loop;
}

Loop& Program::rootLoop() {
  MOTUNE_CHECK_MSG(body.size() == 1 && body.front()->kind == Stmt::Kind::Loop,
                   "program body must be a single loop nest");
  return body.front()->loop;
}

namespace {
void walkStmt(const Stmt& s, std::vector<const Loop*>& stack,
              const std::function<void(const Stmt&,
                                       const std::vector<const Loop*>&)>& fn) {
  fn(s, stack);
  if (s.kind == Stmt::Kind::Loop) {
    stack.push_back(&s.loop);
    for (const auto& child : s.loop.body) walkStmt(*child, stack, fn);
    stack.pop_back();
  }
}
} // namespace

void walk(const Program& p,
          const std::function<void(const Stmt&,
                                   const std::vector<const Loop*>&)>& fn) {
  std::vector<const Loop*> stack;
  for (const auto& s : p.body) walkStmt(*s, stack, fn);
}

bool structurallyEqual(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
  case Expr::Kind::Const:
    return a.constant == b.constant;
  case Expr::Kind::IvRef:
    return a.iv == b.iv;
  case Expr::Kind::Read:
    return a.array == b.array && a.subscripts == b.subscripts;
  case Expr::Kind::Binary:
    return a.binOp == b.binOp && structurallyEqual(*a.lhs, *b.lhs) &&
           structurallyEqual(*a.rhs, *b.rhs);
  case Expr::Kind::Unary:
    return a.unOp == b.unOp && structurallyEqual(*a.lhs, *b.lhs);
  }
  return false;
}

bool structurallyEqual(const Stmt& a, const Stmt& b) {
  if (a.kind != b.kind) return false;
  if (a.kind == Stmt::Kind::Assign) {
    return a.assign.array == b.assign.array &&
           a.assign.subscripts == b.assign.subscripts &&
           a.assign.accumulate == b.assign.accumulate &&
           structurallyEqual(*a.assign.rhs, *b.assign.rhs);
  }
  const Loop& la = a.loop;
  const Loop& lb = b.loop;
  if (la.iv != lb.iv || la.lower != lb.lower || la.upper != lb.upper ||
      la.step != lb.step || la.parallel != lb.parallel ||
      la.collapse != lb.collapse || la.body.size() != lb.body.size())
    return false;
  for (std::size_t i = 0; i < la.body.size(); ++i)
    if (!structurallyEqual(*la.body[i], *lb.body[i])) return false;
  return true;
}

bool structurallyEqual(const Program& a, const Program& b) {
  if (a.arrays.size() != b.arrays.size() || a.body.size() != b.body.size())
    return false;
  for (std::size_t i = 0; i < a.arrays.size(); ++i) {
    if (a.arrays[i].name != b.arrays[i].name ||
        a.arrays[i].dims != b.arrays[i].dims ||
        a.arrays[i].elemBytes != b.arrays[i].elemBytes)
      return false;
  }
  for (std::size_t i = 0; i < a.body.size(); ++i)
    if (!structurallyEqual(*a.body[i], *b.body[i])) return false;
  return true;
}

StmtPtr substituteIv(const Stmt& s, const std::string& name,
                     const AffineExpr& repl) {
  if (s.kind == Stmt::Kind::Assign) {
    Assign a = s.assign;
    for (auto& sub : a.subscripts) sub = sub.substitute(name, repl);
    a.rhs = a.rhs->substitute(name, repl);
    return Stmt::makeAssign(std::move(a));
  }
  Loop l;
  l.iv = s.loop.iv;
  l.lower = s.loop.lower.substitute(name, repl);
  l.upper = s.loop.upper.substitute(name, repl);
  l.step = s.loop.step;
  l.parallel = s.loop.parallel;
  l.collapse = s.loop.collapse;
  l.body.reserve(s.loop.body.size());
  for (const auto& child : s.loop.body)
    l.body.push_back(substituteIv(*child, name, repl));
  return Stmt::makeLoop(std::move(l));
}

std::int64_t tripCount(const Loop& loop, const Env& env) {
  const std::int64_t lo = loop.lower.eval(env);
  const std::int64_t hi = loop.upper.eval(env);
  if (hi <= lo) return 0;
  return (hi - lo + loop.step - 1) / loop.step;
}

} // namespace motune::ir
