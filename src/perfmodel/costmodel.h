// Analytical execution-cost model: the reproduction's stand-in for running
// code variants on the paper's Westmere and Barcelona machines
// (DESIGN.md §1). Given a (tiled, parallelized) IR program, a machine model
// and a thread count, it predicts wall-clock time and resource usage.
//
// Mechanisms modeled (each tied to an observation in the paper):
//  * per-level cache traffic from footprint/reuse analysis — tiling
//    speedups and the L1/L2/L3 tile-size sweet spots (Table II, Fig. 2);
//  * shared L3 capacity divided among co-located threads — thread-count-
//    dependent optimal tile sizes (paper §II);
//  * DRAM bandwidth saturation per socket, load imbalance of the collapsed
//    parallel loop, and fork/join overhead — sub-linear speedup and the
//    time/efficiency trade-off (Fig. 1, Table III);
//  * scalar vs. unit-stride (vectorizable) inner loops and heavy-op
//    (div/sqrt) throughput — kernel-to-kernel contrast (Table IV/V).
#pragma once

#include "machine/machine.h"
#include "perfmodel/footprint.h"

#include <string>
#include <vector>

namespace motune::perf {

/// Calibration constants. Defaults are sensible for the two modeled
/// machines; tests pin the qualitative invariants, not these numbers.
struct CostParams {
  double fitFraction = 0.70;      ///< usable cache fraction (conflicts, assoc)
  double residentFraction = 0.40; ///< max block size kept hot under streaming
  double loopOverheadCycles = 2.0;
  double heavyOpCycles = 18.0;    ///< div/sqrt cost in cycles
  double scalarIssueFactor = 0.5; ///< non-vectorizable flop throughput factor
  double vectorIssueFactor = 1.0;
  double latencyChargeFraction = 0.45; ///< visible fraction of miss latency
                                       ///< (prefetch/overlap hides the rest)
  double noiseAmplitude = 0.0; ///< deterministic pseudo-noise, 0 = off
};

/// Cost breakdown for one (program, machine, threads) evaluation.
struct Prediction {
  double seconds = 0.0;     ///< objective 1: wall-clock time
  double resources = 0.0;   ///< objective 2: threads x seconds
  double joules = 0.0;      ///< objective 3 (optional): energy consumed

  double computeSeconds = 0.0;
  double memorySeconds = 0.0;
  double overheadSeconds = 0.0;  ///< loop bookkeeping
  double forkJoinSeconds = 0.0;
  double bandwidthSeconds = 0.0; ///< per-socket DRAM bandwidth bound
  double imbalance = 1.0;        ///< parallel load-imbalance factor (>= 1)
  int threads = 1;

  /// Bytes fetched into each cache level (machine-wide); the last entry is
  /// DRAM traffic.
  std::vector<double> trafficBytes;
};

class CostModel {
public:
  explicit CostModel(machine::MachineModel machine, CostParams params = {});

  /// Full pipeline: nest analysis + prediction.
  Prediction predict(const ir::Program& program, int threads) const;

  /// Prediction from a pre-computed nest analysis (the sweep harness reuses
  /// one analysis across thread counts).
  Prediction predictAnalyzed(const NestAnalysis& na, int threads) const;

  const machine::MachineModel& machine() const { return machine_; }
  const CostParams& params() const { return params_; }

private:
  machine::MachineModel machine_;
  CostParams params_;
};

} // namespace motune::perf
