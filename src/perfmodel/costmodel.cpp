#include "perfmodel/costmodel.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::perf {

namespace {

/// Deterministic hash-derived factor in [1 - amp, 1 + amp]; stands in for
/// measurement noise while keeping every experiment reproducible.
double noiseFactor(const NestAnalysis& na, int threads, double amp) {
  if (amp <= 0.0) return 1.0;
  std::uint64_t h = 0x9e3779b97f4a7c15ull ^ static_cast<std::uint64_t>(threads);
  for (const auto& l : na.loops) {
    const auto bits = static_cast<std::uint64_t>(l.avgTrip * 4096.0);
    h ^= bits + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  const double unit = static_cast<double>(h >> 11) * 0x1.0p-53; // [0,1)
  return 1.0 + amp * (2.0 * unit - 1.0);
}

} // namespace

CostModel::CostModel(machine::MachineModel machine, CostParams params)
    : machine_(std::move(machine)), params_(params) {
  MOTUNE_CHECK(!machine_.caches.empty());
}

Prediction CostModel::predict(const ir::Program& program, int threads) const {
  return predictAnalyzed(analyzeNest(program), threads);
}

Prediction CostModel::predictAnalyzed(const NestAnalysis& na,
                                      int threads) const {
  MOTUNE_CHECK(threads >= 1);
  Prediction out;
  out.threads = threads;

  const std::size_t depth = na.loops.size();
  const std::int64_t line = machine_.caches.front().lineBytes;
  const double freqHz = machine_.freqGHz * 1e9;

  // --- parallel decomposition ----------------------------------------------
  double chunks = 1.0;
  if (na.loops.front().parallel) {
    const int collapse = na.loops.front().collapse;
    for (int l = 0; l < collapse && l < static_cast<int>(depth); ++l)
      chunks *= na.loops[static_cast<std::size_t>(l)].avgTrip;
  }
  const int hwThreads = std::min(threads, machine_.totalCores());
  const int pEff = std::max(1, std::min<int>(hwThreads,
                                             static_cast<int>(chunks)));
  out.imbalance =
      chunks > 0 ? std::ceil(chunks / pEff) * pEff / chunks : 1.0;

  auto perThreadOuter = [&](std::size_t level) {
    return std::max(1.0, na.outerIterations(level) / pEff);
  };

  // --- per-level cache traffic ----------------------------------------------
  // Thread-sharing analysis: an access class whose subscripts do not
  // depend on any parallel induction variable touches the SAME data in
  // every thread (e.g. the X/Y/Z sweeps of n-body). In a socket-shared
  // cache such data occupies one copy for all co-located threads, whereas
  // thread-private data (e.g. mm's C tiles) is replicated per thread —
  // this is why the paper's n-body set "fits entirely in the cache" on
  // Westmere regardless of the thread count (§V.C).
  std::vector<std::string> parallelIvs;
  if (na.loops.front().parallel) {
    const int collapse = na.loops.front().collapse;
    for (int l = 0; l < collapse && l < static_cast<int>(depth); ++l)
      parallelIvs.push_back(na.loops[static_cast<std::size_t>(l)].loop->iv);
    for (const auto& ld : na.loops) {
      for (const auto& piv : parallelIvs)
        if (ld.loop->lower.dependsOn(piv)) {
          parallelIvs.push_back(ld.loop->iv);
          break;
        }
    }
  }
  auto classIsShared = [&](const AccessClass& cls) {
    for (const auto& sub : cls.linear)
      for (const auto& piv : parallelIvs)
        if (sub.dependsOn(piv)) return false;
    return true;
  };

  // Flattened class list with per-level footprints.
  struct ClassInfo {
    bool shared = false;
    std::vector<double> fp; // per nest level
  };
  std::vector<ClassInfo> classes;
  for (std::size_t a = 0; a < na.arrays.size(); ++a) {
    for (std::size_t k = 0; k < na.arrays[a].classes.size(); ++k) {
      ClassInfo info;
      info.shared = classIsShared(na.arrays[a].classes[k]);
      info.fp.resize(depth + 1);
      for (std::size_t lvl = 0; lvl <= depth; ++lvl)
        info.fp[lvl] = footprintBytesClass(na, a, k, lvl, line);
      classes.push_back(std::move(info));
    }
  }

  const std::size_t numCaches = machine_.caches.size();
  std::vector<double> perThreadTraffic(numCaches, 0.0);
  double memCycles = 0.0;
  double socketDramBytes = 0.0;
  for (std::size_t c = 0; c < numCaches; ++c) {
    const auto& spec = machine_.caches[c];
    const double sharers =
        spec.sharedPerSocket ? machine_.maxThreadsOnOneSocket(hwThreads) : 1.0;
    const double rawCapacity = static_cast<double>(spec.capacityBytes);
    const double capacity = rawCapacity * params_.fitFraction;
    auto weight = [&](const ClassInfo& info) {
      return info.shared ? 1.0 : sharers; // private data: one copy per thread
    };

    // Outermost level whose (sharing-weighted) working set is resident.
    std::size_t mStar = depth;
    for (std::size_t lvl = 0; lvl <= depth; ++lvl) {
      double weighted = 0.0;
      for (const auto& info : classes) weighted += info.fp[lvl] * weight(info);
      if (weighted <= capacity) {
        mStar = lvl;
        break;
      }
    }

    const double nextLatency =
        c + 1 < numCaches
            ? static_cast<double>(machine_.caches[c + 1].latencyCycles)
            : static_cast<double>(machine_.dramLatencyCycles);
    const bool lastLevel = c + 1 == numCaches;

    double bytes = 0.0;
    for (const auto& info : classes) {
      // Small blocks that do not grow across outer loops stay hot under
      // LRU even when the total working set streams (e.g. the C tile of mm
      // across the kt loop): walk outward while the class's footprint is
      // unchanged and small.
      std::size_t lvlA = mStar;
      if (info.fp[mStar] * weight(info) <=
          params_.residentFraction * rawCapacity) {
        while (lvlA > 0 && info.fp[lvlA - 1] <= info.fp[mStar] * 1.02) --lvlA;
      }
      const double classBytes = perThreadOuter(lvlA) * info.fp[mStar];
      bytes += classBytes;
      // Shared-class misses at the last level are amortized across the
      // socket: one DRAM fetch serves every co-located thread.
      const double amortize = lastLevel && info.shared ? sharers : 1.0;
      memCycles += classBytes / static_cast<double>(line) * nextLatency *
                   params_.latencyChargeFraction / amortize;
      if (lastLevel)
        socketDramBytes += classBytes * (info.shared ? 1.0 : sharers);
    }
    perThreadTraffic[c] = bytes;
  }

  // --- compute and loop overhead --------------------------------------------
  const double leafIterPT = na.leafIterations() / pEff;
  const double issue = na.innermostUnitStride ? params_.vectorIssueFactor
                                              : params_.scalarIssueFactor;
  const double flopsPerCycle = machine_.flopsPerCyclePerCore * issue;
  const double computeCycles =
      leafIterPT * (na.flopsPerIter / flopsPerCycle +
                    na.heavyOpsPerIter * params_.heavyOpCycles);

  double loopCycles = 0.0;
  for (std::size_t l = 0; l < depth; ++l)
    loopCycles += perThreadOuter(l + 1) * params_.loopOverheadCycles;

  // --- assemble --------------------------------------------------------------
  const double contention = machine_.memContentionFactor(hwThreads);
  out.computeSeconds = computeCycles / freqHz;
  out.memorySeconds = memCycles / freqHz;
  out.overheadSeconds = loopCycles / freqHz;

  out.bandwidthSeconds =
      socketDramBytes / (machine_.dramBandwidthGBs * 1e9);

  out.forkJoinSeconds =
      threads > 1 ? (machine_.forkJoinBaseUs +
                     machine_.forkJoinPerThreadUs * threads) * 1e-6
                  : 0.0;

  // The contention factor scales the whole parallel execution: cache
  // coherence, snoop and interconnect traffic slow co-located threads down
  // even when their working sets are private (calibrated against the
  // paper's measured Table III efficiencies; == 1 for a single thread).
  const double perThread =
      out.computeSeconds + out.memorySeconds + out.overheadSeconds;
  double wall = std::max(perThread, out.bandwidthSeconds) * contention *
                    out.imbalance +
                out.forkJoinSeconds;
  wall *= noiseFactor(na, threads, params_.noiseAmplitude);

  out.seconds = wall;
  out.resources = static_cast<double>(threads) * wall;

  // Energy: busy cores + occupied-socket base power over the run, plus the
  // DRAM access energy of the machine-wide traffic.
  const double dramBytesTotal =
      socketDramBytes * machine_.socketsUsed(hwThreads);
  out.joules = wall * (machine_.corePowerActiveW * hwThreads +
                       machine_.socketPowerBaseW *
                           machine_.socketsUsed(hwThreads)) +
               dramBytesTotal * machine_.dramEnergyPerByteNj * 1e-9;

  out.trafficBytes.resize(numCaches);
  for (std::size_t c = 0; c < numCaches; ++c)
    out.trafficBytes[c] = perThreadTraffic[c] * pEff;
  return out;
}

} // namespace motune::perf
