#include "perfmodel/footprint.h"

#include "analyzer/access.h"
#include "support/check.h"
#include "transform/transforms.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace motune::perf {

namespace {

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
  double width() const { return hi - lo; }
};

using IvIntervals = std::vector<std::pair<std::string, Interval>>;

const Interval* find(const IvIntervals& ivs, const std::string& name) {
  for (const auto& [n, iv] : ivs)
    if (n == name) return &iv;
  return nullptr;
}

Interval evalInterval(const ir::AffineExpr& e, const IvIntervals& ivs) {
  Interval out{static_cast<double>(e.constantTerm()),
               static_cast<double>(e.constantTerm())};
  for (const auto& [name, coeff] : e.terms()) {
    const Interval* iv = find(ivs, name);
    MOTUNE_CHECK_MSG(iv != nullptr, "unbound iv in affine expr: " + name);
    const double c = static_cast<double>(coeff);
    if (c >= 0) {
      out.lo += c * iv->lo;
      out.hi += c * iv->hi;
    } else {
      out.lo += c * iv->hi;
      out.hi += c * iv->lo;
    }
  }
  return out;
}

/// Value intervals of every iv when loops [level, D) vary and outer loops
/// are pinned to their first iteration.
IvIntervals ivIntervalsAtLevel(const NestAnalysis& na, std::size_t level) {
  IvIntervals ivs;
  for (std::size_t idx = 0; idx < na.loops.size(); ++idx) {
    const ir::Loop& loop = *na.loops[idx].loop;
    const Interval lo = evalInterval(loop.lower, ivs);
    Interval hi = evalInterval(loop.upper.base, ivs);
    if (loop.upper.cap) {
      const Interval cap = evalInterval(*loop.upper.cap, ivs);
      hi.lo = std::min(hi.lo, cap.lo);
      hi.hi = std::min(hi.hi, cap.hi);
    }
    Interval value;
    if (idx >= level) {
      value = {lo.lo, std::max(lo.lo, hi.hi - 1.0)};
    } else {
      value = {lo.lo, lo.lo}; // fixed at the first iteration
    }
    ivs.emplace_back(loop.iv, value);
  }
  return ivs;
}

double roundUpTo(double x, double granule) {
  return std::ceil(x / granule) * granule;
}

/// Counts arithmetic in an expression tree. Shared subtrees (the builders
/// reuse ExprPtr nodes, e.g. n-body's 1/(r^2 sqrt(r^2)) factor) are counted
/// once — any real backend would CSE them.
void countOps(const ir::Expr& e, double& flops, double& heavy, double& mem,
              std::set<const ir::Expr*>& visited) {
  if (!visited.insert(&e).second) return;
  switch (e.kind) {
  case ir::Expr::Kind::Const:
  case ir::Expr::Kind::IvRef:
    return;
  case ir::Expr::Kind::Read:
    mem += 1.0;
    return;
  case ir::Expr::Kind::Binary:
    if (e.binOp == ir::BinOp::Div)
      heavy += 1.0;
    else
      flops += 1.0;
    countOps(*e.lhs, flops, heavy, mem, visited);
    countOps(*e.rhs, flops, heavy, mem, visited);
    return;
  case ir::Expr::Kind::Unary:
    if (e.unOp == ir::UnOp::Sqrt)
      heavy += 1.0;
    else
      flops += 1.0;
    countOps(*e.lhs, flops, heavy, mem, visited);
    return;
  }
}

/// Average trip count; exact for constant bounds and for the point loops
/// produced by tiling (see header).
double averageTrip(const ir::Loop& loop,
                   const std::vector<const ir::Loop*>& outer) {
  if (loop.lower.isConstant() && loop.upper.base.isConstant() &&
      !loop.upper.cap.has_value()) {
    const double lo = static_cast<double>(loop.lower.constantTerm());
    const double hi = static_cast<double>(loop.upper.base.constantTerm());
    if (hi <= lo) return 0.0;
    return std::ceil((hi - lo) / static_cast<double>(loop.step));
  }

  // Point-loop pattern: lower = <tile iv>, upper = min(<tile iv> + T, N).
  const auto vars = loop.lower.variables();
  MOTUNE_CHECK_MSG(vars.size() == 1 && loop.lower.coeffOf(vars[0]) == 1 &&
                       loop.upper.cap.has_value() &&
                       loop.upper.cap->isConstant(),
                   "unsupported loop bound shape in performance model");
  const ir::AffineExpr tdiff = loop.upper.base - loop.lower;
  MOTUNE_CHECK_MSG(tdiff.isConstant(), "point loop tile size must be constant");
  const auto tileSize = static_cast<double>(tdiff.constantTerm());

  const ir::Loop* tileLoop = nullptr;
  for (const auto* o : outer)
    if (o->iv == vars[0]) tileLoop = o;
  MOTUNE_CHECK_MSG(tileLoop != nullptr, "tile loop not found for point loop");
  MOTUNE_CHECK(tileLoop->lower.isConstant() &&
               tileLoop->upper.base.isConstant());
  const double range =
      static_cast<double>(loop.upper.cap->constantTerm() -
                          tileLoop->lower.constantTerm());
  if (range <= 0) return 0.0;
  const double tiles = std::ceil(range / tileSize);
  return range / tiles;
}

} // namespace

double NestAnalysis::outerIterations(std::size_t level) const {
  MOTUNE_CHECK(level <= loops.size());
  double prod = 1.0;
  for (std::size_t l = 0; l < level; ++l) prod *= loops[l].avgTrip;
  return prod;
}

NestAnalysis analyzeNest(const ir::Program& program) {
  NestAnalysis na;
  const auto nest = transform::perfectNest(program);
  MOTUNE_CHECK_MSG(!nest.empty(), "program has no loop nest");

  std::vector<const ir::Loop*> outerSoFar;
  for (const auto* loop : nest) {
    LoopDesc desc;
    desc.loop = loop;
    desc.avgTrip = averageTrip(*loop, outerSoFar);
    desc.parallel = loop->parallel;
    desc.collapse = loop->collapse;
    na.loops.push_back(desc);
    outerSoFar.push_back(loop);
  }

  // Group accesses into per-array classes with identical linear parts.
  struct ClassBuild {
    std::vector<ir::AffineExpr> linear;
    std::vector<std::int64_t> minConst, maxConst;
    int count = 0;
    bool hasWrite = false;
  };
  struct ArrayBuild {
    const ir::ArrayDecl* decl;
    std::vector<ClassBuild> classes;
  };
  std::vector<ArrayBuild> arrayBuilds;

  auto stripped = [](const std::vector<ir::AffineExpr>& subs) {
    std::vector<ir::AffineExpr> out = subs;
    for (auto& s : out) s = s - s.constantTerm();
    return out;
  };

  for (const auto& acc : analyzer::collectAccesses(program)) {
    const ir::ArrayDecl* decl = program.findArray(acc.array);
    MOTUNE_CHECK_MSG(decl != nullptr, "access to undeclared array");
    ArrayBuild* ab = nullptr;
    for (auto& b : arrayBuilds)
      if (b.decl == decl) ab = &b;
    if (ab == nullptr) {
      arrayBuilds.push_back({decl, {}});
      ab = &arrayBuilds.back();
    }

    const auto linear = stripped(acc.subscripts);
    ClassBuild* cls = nullptr;
    for (auto& c : ab->classes)
      if (c.linear == linear) cls = &c;
    if (cls == nullptr) {
      ClassBuild c;
      c.linear = linear;
      c.minConst.resize(linear.size());
      c.maxConst.resize(linear.size());
      for (std::size_t d = 0; d < linear.size(); ++d)
        c.minConst[d] = c.maxConst[d] = acc.subscripts[d].constantTerm();
      ab->classes.push_back(std::move(c));
      cls = &ab->classes.back();
    } else {
      for (std::size_t d = 0; d < linear.size(); ++d) {
        cls->minConst[d] =
            std::min(cls->minConst[d], acc.subscripts[d].constantTerm());
        cls->maxConst[d] =
            std::max(cls->maxConst[d], acc.subscripts[d].constantTerm());
      }
    }
    ++cls->count;
    cls->hasWrite = cls->hasWrite || acc.isWrite;
  }

  for (auto& ab : arrayBuilds) {
    ArrayUsage usage;
    usage.decl = ab.decl;
    for (auto& c : ab.classes) {
      AccessClass out;
      out.linear = std::move(c.linear);
      out.spread.resize(out.linear.size());
      for (std::size_t d = 0; d < out.spread.size(); ++d)
        out.spread[d] = c.maxConst[d] - c.minConst[d];
      out.accessCount = c.count;
      out.hasWrite = c.hasWrite;
      usage.classes.push_back(std::move(out));
    }
    na.arrays.push_back(std::move(usage));
  }

  // Leaf-body operation counts and vectorizability.
  const ir::Loop* innermost = nest.back();
  const std::string& innerIv = innermost->iv;
  std::set<const ir::Expr*> visited;
  ir::walk(program, [&](const ir::Stmt& s,
                        const std::vector<const ir::Loop*>&) {
    if (s.kind != ir::Stmt::Kind::Assign) return;
    countOps(*s.assign.rhs, na.flopsPerIter, na.heavyOpsPerIter,
             na.memAccessesPerIter, visited);
    na.memAccessesPerIter += s.assign.accumulate ? 2.0 : 1.0; // target access
    if (s.assign.accumulate) na.flopsPerIter += 1.0;
  });

  auto strideOk = [&](const std::vector<ir::AffineExpr>& subs) {
    if (subs.empty()) return true;
    for (std::size_t d = 0; d + 1 < subs.size(); ++d)
      if (subs[d].dependsOn(innerIv)) return false;
    const std::int64_t c = subs.back().coeffOf(innerIv);
    return c == 0 || c == 1;
  };
  na.innermostUnitStride = true;
  for (const auto& au : na.arrays)
    for (const auto& cls : au.classes)
      if (!strideOk(cls.linear)) na.innermostUnitStride = false;

  return na;
}

namespace {
double classFootprint(const AccessClass& cls, const ir::ArrayDecl& decl,
                      const IvIntervals& ivs, double line) {
  const auto elemBytes = static_cast<double>(decl.elemBytes);
  double rows = 1.0;
  double lastExtent = 1.0;
  for (std::size_t d = 0; d < cls.linear.size(); ++d) {
    double width = static_cast<double>(cls.spread[d]);
    for (const auto& [name, coeff] : cls.linear[d].terms()) {
      const Interval* iv = find(ivs, name);
      MOTUNE_CHECK(iv != nullptr);
      width += std::abs(static_cast<double>(coeff)) * iv->width();
    }
    double extent =
        std::min(width + 1.0, static_cast<double>(decl.dims[d]));
    if (d + 1 == cls.linear.size())
      lastExtent = extent;
    else
      rows *= extent;
  }
  const double bytes = rows * roundUpTo(lastExtent * elemBytes, line);
  // Never report more than the whole array.
  return std::min(bytes, roundUpTo(static_cast<double>(decl.bytes()), line));
}
} // namespace

double footprintBytes(const NestAnalysis& na, std::size_t arrayIdx,
                      std::size_t level, std::int64_t lineBytes) {
  MOTUNE_CHECK(arrayIdx < na.arrays.size());
  const ArrayUsage& usage = na.arrays[arrayIdx];
  const IvIntervals ivs = ivIntervalsAtLevel(na, level);

  double total = 0.0;
  for (const AccessClass& cls : usage.classes)
    total += classFootprint(cls, *usage.decl, ivs,
                            static_cast<double>(lineBytes));
  // Classes of the same array may overlap (n-body reads X[i] and X[j]);
  // never report more than the whole array.
  const double arrayCap = roundUpTo(
      static_cast<double>(usage.decl->bytes()), static_cast<double>(lineBytes));
  return std::min(total, arrayCap);
}

double footprintBytesClass(const NestAnalysis& na, std::size_t arrayIdx,
                           std::size_t classIdx, std::size_t level,
                           std::int64_t lineBytes) {
  MOTUNE_CHECK(arrayIdx < na.arrays.size());
  const ArrayUsage& usage = na.arrays[arrayIdx];
  MOTUNE_CHECK(classIdx < usage.classes.size());
  const IvIntervals ivs = ivIntervalsAtLevel(na, level);
  return classFootprint(usage.classes[classIdx], *usage.decl, ivs,
                        static_cast<double>(lineBytes));
}

double totalFootprintBytes(const NestAnalysis& na, std::size_t level,
                           std::int64_t lineBytes) {
  double total = 0.0;
  for (std::size_t a = 0; a < na.arrays.size(); ++a)
    total += footprintBytes(na, a, level, lineBytes);
  return total;
}

} // namespace motune::perf
