// Loop-nest footprint analysis.
//
// For every nesting level l, this module computes the number of distinct
// bytes of each array touched by one complete execution of loops l..D with
// the outer loops held fixed ("the footprint at level l"), with cache-line
// granularity. The cost model (costmodel.h) combines these footprints with
// cache capacities to estimate per-level traffic — the standard
// working-set / distinct-lines approach (Ferrante et al.), which is what
// makes the model respond to tile sizes and shared-cache capacity exactly
// the way the paper's real machines do.
#pragma once

#include "ir/program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace motune::perf {

/// One loop of the (perfect) nest with its average trip count. For tiled
/// point loops the average accounts for boundary tiles exactly
/// (avgTrip = range / numTiles), so products of avgTrips along the nest
/// equal exact iteration counts.
struct LoopDesc {
  const ir::Loop* loop = nullptr;
  double avgTrip = 1.0;
  bool parallel = false;
  int collapse = 1;
};

/// A group of accesses to one array sharing identical linear subscript
/// parts; constant offsets are merged into per-dimension spreads (so the
/// 27 reads of the 3d-stencil form a single class with spread 2 per dim).
struct AccessClass {
  std::vector<ir::AffineExpr> linear; ///< representative subscripts
  std::vector<std::int64_t> spread;   ///< per dim: max - min constant term
  int accessCount = 0;                ///< dynamic accesses per leaf iteration
  bool hasWrite = false;
};

struct ArrayUsage {
  const ir::ArrayDecl* decl = nullptr;
  std::vector<AccessClass> classes;
};

/// Everything the cost model needs, extracted in one pass.
struct NestAnalysis {
  std::vector<LoopDesc> loops;     ///< outermost first
  std::vector<ArrayUsage> arrays;
  double flopsPerIter = 0.0;       ///< weighted flop count of the leaf body
  double heavyOpsPerIter = 0.0;    ///< div/sqrt count (latency-bound ops)
  double memAccessesPerIter = 0.0; ///< array reads+writes per leaf iteration
  bool innermostUnitStride = true; ///< leaf vectorizable (stride 0/1 last dim)

  /// Product of avgTrips of loops [0, level) — iterations of the sub-nest
  /// at `level` (level loops.size() = leaf iterations of the whole nest).
  double outerIterations(std::size_t level) const;

  /// Total leaf iterations.
  double leafIterations() const { return outerIterations(loops.size()); }
};

/// Analyzes a program whose body is a single perfect loop nest (original or
/// tiled kernels; multi-statement leaf bodies are fine). The result holds
/// pointers into `program`, which must outlive it.
NestAnalysis analyzeNest(const ir::Program& program);

/// Distinct bytes of `arrays[arrayIdx]` touched by one execution of loops
/// [level, D) with outer loops fixed; line-granular, clamped to the array
/// size. level == loops.size() gives the leaf (single iteration) footprint.
double footprintBytes(const NestAnalysis& na, std::size_t arrayIdx,
                      std::size_t level, std::int64_t lineBytes);

/// Sum of footprintBytes over all arrays.
double totalFootprintBytes(const NestAnalysis& na, std::size_t level,
                           std::int64_t lineBytes);

/// Footprint of a single access class (see footprintBytes).
double footprintBytesClass(const NestAnalysis& na, std::size_t arrayIdx,
                           std::size_t classIdx, std::size_t level,
                           std::int64_t lineBytes);

} // namespace motune::perf
