// Evaluation plumbing around ObjectiveFunction:
//  * CountingEvaluator memoizes evaluated configurations and counts unique
//    evaluations — the E metric of Table VI ("the number of points
//    evaluated for obtaining a solution set");
//  * BatchEvaluator evaluates configuration sets through the thread pool,
//    mirroring the paper's parallel evaluation of independent
//    configurations during compilation (§III.A, §IV).
#pragma once

#include "observe/metrics.h"
#include "runtime/thread_pool.h"
#include "tuning/kernel_problem.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace motune::tuning {

class CountingEvaluator final : public ObjectiveFunction {
public:
  explicit CountingEvaluator(ObjectiveFunction& inner);

  std::size_t numObjectives() const override {
    return inner_.numObjectives();
  }
  const std::vector<ParamSpec>& space() const override {
    return inner_.space();
  }

  Objectives evaluate(const Config& config) override;

  /// Unique configurations evaluated so far (cache hits are free, exactly
  /// as re-running an already-measured variant would be skipped).
  std::uint64_t evaluations() const;

  /// Memoized lookups served without re-evaluation, since construction or
  /// the last reset().
  std::uint64_t memoHits() const;

  void reset();

private:
  ObjectiveFunction& inner_;
  mutable std::mutex mutex_;
  // Hash-indexed memo: ordered-map lookups (O(log n) Config comparisons)
  // dominate memo-heavy sweeps such as the brute-force grids.
  std::unordered_map<Config, Objectives, ConfigHash> memo_;
  std::uint64_t evals_ = 0;
  std::uint64_t memoHits_ = 0;
  // Process-wide mirrors exported through the observability layer.
  observe::Counter& uniqueCounter_;
  observe::Counter& memoHitCounter_;
  observe::Histogram& latency_;
};

class BatchEvaluator {
public:
  BatchEvaluator(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                 bool parallel = true)
      : fn_(fn), pool_(pool), parallel_(parallel) {}

  /// Evaluates all configurations (in parallel when enabled), preserving
  /// order.
  std::vector<Objectives> evaluateAll(const std::vector<Config>& configs);

private:
  ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  bool parallel_;
};

} // namespace motune::tuning
