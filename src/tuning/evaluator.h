// Evaluation plumbing around ObjectiveFunction:
//  * CountingEvaluator memoizes evaluated configurations and counts unique
//    evaluations — the E metric of Table VI ("the number of points
//    evaluated for obtaining a solution set");
//  * BatchEvaluator evaluates configuration sets through the thread pool,
//    mirroring the paper's parallel evaluation of independent
//    configurations during compilation (§III.A, §IV).
//
// The memo is two-level. A thread-local front cache serves repeat lookups
// without touching any shared cache line, so parallel batch evaluation of
// previously-seen configurations scales with the thread count instead of
// ping-ponging shard locks between cores. Behind it, the shared memo is
// striped across hash-selected shards (independent mutexes) and has
// single-flight semantics: when several threads ask for the same
// not-yet-evaluated configuration, exactly one evaluates it and the others
// block until the result is published — a duplicate config costs one
// evaluation, never two, regardless of timing. reset() invalidates the
// front caches lazily via an epoch counter.
#pragma once

#include "observe/metrics.h"
#include "runtime/thread_pool.h"
#include "tuning/kernel_problem.h"

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace motune::tuning {

class CountingEvaluator final : public ObjectiveFunction {
public:
  explicit CountingEvaluator(ObjectiveFunction& inner);

  std::size_t numObjectives() const override {
    return inner_.numObjectives();
  }
  const std::vector<ParamSpec>& space() const override {
    return inner_.space();
  }

  Objectives evaluate(const Config& config) override;

  /// Unique configurations evaluated so far (cache hits are free, exactly
  /// as re-running an already-measured variant would be skipped).
  std::uint64_t evaluations() const;

  /// Memoized lookups served without re-evaluation — including lookups
  /// that waited on an in-flight evaluation of the same configuration —
  /// since construction or the last reset().
  std::uint64_t memoHits() const;

  /// Clears the memo and zeroes both the local counters and the
  /// tuning.evaluations.* metric counters, so back-to-back runs in one
  /// process report per-run (not cumulative) counts.
  void reset();

  /// Journal hook for durable sessions (src/session/): called once per
  /// *unique* evaluation — on the leader path, after the result is
  /// published, outside any shard lock — never for memo hits or preloaded
  /// entries. Set it before evaluation starts; it is read concurrently.
  using EvalListener = std::function<void(const Config&, const Objectives&)>;
  void setListener(EvalListener listener) { listener_ = std::move(listener); }

  /// Pre-seeds the memo with a result recorded by a previous (killed) run.
  /// The configuration counts as one unique evaluation, exactly as if this
  /// evaluator had computed it, so a resumed search reports the same E as
  /// an uninterrupted one; later lookups are ordinary memo hits. Returns
  /// false (and changes nothing) if the config is already memoized or has
  /// an evaluation in flight (the leader's identical result then wins).
  ///
  /// Thread safety: preload() takes the shard lock and may race evaluate()
  /// and reset() — a daemon restart can re-seed one job's evaluator while
  /// other jobs are mid-search. The deterministic-E guarantee, however,
  /// only holds when each search owns its evaluator: the serve layer
  /// enforces per-job evaluator isolation (one AutoTuner per job), pinned
  /// by tests/serve_test.cpp and the concurrency tests in tuning_test.cpp.
  bool preload(const Config& config, const Objectives& objectives);

private:
  // 16 shards comfortably cover the pool sizes the batch evaluator runs
  // with (machine core counts); power of two so selection is a mask.
  static constexpr std::size_t kShards = 16;

  // One memo entry. Pending entries are in-flight evaluations duplicates
  // wait on; Ready entries hold the published objectives; Failed marks a
  // leader whose evaluation threw (the entry is removed and waiters retry,
  // electing a new leader). Entries are shared_ptrs so waiters keep theirs
  // alive across a concurrent reset() or failure-erase.
  struct Slot {
    enum class State { Pending, Ready, Failed };
    State state = State::Pending;
    Objectives value;
  };

  // Unique-evaluation counts live inside the shard, updated under the
  // shard mutex the miss path already holds. alignas keeps adjacent shards
  // off each other's cache lines.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::condition_variable ready;
    std::unordered_map<Config, std::shared_ptr<Slot>, ConfigHash> memo;
    std::uint64_t evals = 0;
  };

  ObjectiveFunction& inner_;
  std::array<Shard, kShards> shards_;
  // Distinguishes this instance from others a pool thread's front cache
  // may have served (ids are never reused, unlike addresses).
  const std::uint64_t id_;
  // Bumped by reset(); front caches compare-and-clear on their next lookup.
  std::atomic<std::uint64_t> epoch_{0};
  // Memo hits (front-cache or shard) — striped, so the front-cache hit
  // path writes only the calling thread's cell.
  observe::Counter hits_;
  // Unique-evaluation journal hook (empty = disabled).
  EvalListener listener_;
  // Process-wide mirrors exported through the observability layer.
  observe::Counter& uniqueCounter_;
  observe::Counter& memoHitCounter_;
  observe::Histogram& latency_;
};

class BatchEvaluator {
public:
  BatchEvaluator(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                 bool parallel = true)
      : fn_(fn), pool_(pool), parallel_(parallel) {}

  /// Evaluates all configurations (in parallel when enabled), preserving
  /// order.
  std::vector<Objectives> evaluateAll(const std::vector<Config>& configs);

private:
  ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  bool parallel_;
};

} // namespace motune::tuning
