// Evaluation plumbing around ObjectiveFunction:
//  * CountingEvaluator memoizes evaluated configurations and counts unique
//    evaluations — the E metric of Table VI ("the number of points
//    evaluated for obtaining a solution set");
//  * BatchEvaluator evaluates configuration sets through the thread pool,
//    mirroring the paper's parallel evaluation of independent
//    configurations during compilation (§III.A, §IV).
#pragma once

#include "runtime/thread_pool.h"
#include "tuning/kernel_problem.h"

#include <cstdint>
#include <map>
#include <mutex>

namespace motune::tuning {

class CountingEvaluator final : public ObjectiveFunction {
public:
  explicit CountingEvaluator(ObjectiveFunction& inner) : inner_(inner) {}

  std::size_t numObjectives() const override {
    return inner_.numObjectives();
  }
  const std::vector<ParamSpec>& space() const override {
    return inner_.space();
  }

  Objectives evaluate(const Config& config) override;

  /// Unique configurations evaluated so far (cache hits are free, exactly
  /// as re-running an already-measured variant would be skipped).
  std::uint64_t evaluations() const;

  void reset();

private:
  ObjectiveFunction& inner_;
  mutable std::mutex mutex_;
  std::map<Config, Objectives> memo_;
  std::uint64_t evals_ = 0;
};

class BatchEvaluator {
public:
  BatchEvaluator(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                 bool parallel = true)
      : fn_(fn), pool_(pool), parallel_(parallel) {}

  /// Evaluates all configurations (in parallel when enabled), preserving
  /// order.
  std::vector<Objectives> evaluateAll(const std::vector<Config>& configs);

private:
  ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  bool parallel_;
};

} // namespace motune::tuning
