// Native evaluator: scores configurations by actually running the tiled
// kernels on the host through the framework's thread pool, taking the
// median over repetitions (the paper's measurement protocol, §V.B.1).
//
// This is the evaluator a deployment on real hardware would use; the
// experiment harness uses the analytical model instead because this
// reproduction runs on a single-core container (DESIGN.md §1).
#pragma once

#include "kernels/kernel.h"
#include "kernels/native.h"
#include "runtime/thread_pool.h"
#include "tuning/kernel_problem.h"

#include <memory>
#include <mutex>

namespace motune::tuning {

class NativeKernelEvaluator final : public ObjectiveFunction {
public:
  NativeKernelEvaluator(const kernels::KernelSpec& kernel, std::int64_t n,
                        int maxThreads, runtime::ThreadPool& pool,
                        int repetitions = 3);

  std::size_t numObjectives() const override { return 2; }
  const std::vector<ParamSpec>& space() const override { return space_; }

  /// Runs the kernel with the configuration's tile sizes and thread count;
  /// returns [median seconds, threads x median seconds]. Serialized: wall
  /// clock measurements must not overlap.
  Objectives evaluate(const Config& config) override;

private:
  double runOnce(const Config& config);

  kernels::KernelSpec kernel_;
  std::int64_t n_;
  int repetitions_;
  runtime::ThreadPool& pool_;
  std::vector<ParamSpec> space_;
  std::mutex runMutex_;

  // Pre-allocated working data, reused across evaluations.
  std::vector<double> a_, b_, c_;
  std::unique_ptr<kernels::Bodies> bodies_;
};

} // namespace motune::tuning
