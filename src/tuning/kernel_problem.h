// The tuning problem of the paper's evaluation: given a kernel region and a
// target machine, map a configuration (t_0..t_{d-1}, threads) to the two
// objectives (execution time, resource usage) by instantiating the
// transformation skeleton and evaluating the resulting variant — on the
// analytical machine model in this reproduction (DESIGN.md §1).
#pragma once

#include "analyzer/region.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "perfmodel/costmodel.h"
#include "tuning/search_space.h"

#include <memory>
#include <mutex>
#include <unordered_map>

namespace motune::tuning {

/// Abstract multi-objective function f : C -> R^m (paper §III.B.1); all
/// objectives are minimized. Implementations must be thread-safe —
/// configurations are evaluated in parallel.
class ObjectiveFunction {
public:
  virtual ~ObjectiveFunction() = default;
  virtual std::size_t numObjectives() const = 0;
  virtual const std::vector<ParamSpec>& space() const = 0;
  virtual Objectives evaluate(const Config& config) = 0;
};

/// Which cost-model outputs a tuning problem minimizes.
enum class Objective {
  Time,      ///< wall-clock seconds
  Resources, ///< threads x seconds (inverse parallel efficiency)
  Energy,    ///< joules (core + socket + DRAM energy)
};

class KernelTuningProblem final : public ObjectiveFunction {
public:
  /// `n` == 0 selects the kernel's experiment problem size (paperN).
  /// The default objective pair is the paper's (time, resources); pass any
  /// combination — e.g. {Time, Resources, Energy} for the tri-objective
  /// problem (hypervolume and dominance generalize, see core/).
  KernelTuningProblem(const kernels::KernelSpec& kernel,
                      machine::MachineModel machine, std::int64_t n = 0,
                      perf::CostParams params = {},
                      std::vector<Objective> objectives = {
                          Objective::Time, Objective::Resources});

  std::size_t numObjectives() const override { return objectives_.size(); }
  const std::vector<ParamSpec>& space() const override { return space_; }
  const std::vector<Objective>& objectives() const { return objectives_; }

  /// The selected objective values for one configuration.
  Objectives evaluate(const Config& config) override;

  /// Full cost breakdown (same path as evaluate()).
  perf::Prediction predictFull(const Config& config);

  /// Time of the untiled, serial region — the "GCC -O3" baseline analog of
  /// Table II's last row.
  double untiledSerialSeconds() const;

  /// Full baseline prediction (time, resources, energy) of the untiled
  /// serial region; used to normalize any objective selection.
  perf::Prediction untiledSerialPrediction() const;

  const analyzer::TransformationSkeleton& skeleton() const {
    return skeleton_;
  }
  const machine::MachineModel& machine() const { return model_.machine(); }
  const kernels::KernelSpec& kernel() const { return kernel_; }
  std::int64_t problemSize() const { return n_; }

  /// Builds the concrete transformed program for a configuration (used by
  /// the multi-versioning backend and codegen).
  ir::Program instantiate(const Config& config) const;

  /// Caps the variant cache (test hook; clears the cache). The default
  /// capacity admits every tile combination of the paper's grids.
  void setVariantCacheCapacity(std::size_t capacity);

  /// Cached variant count / residency probe / eviction count — exposed so
  /// tests can pin the CLOCK eviction behaviour.
  std::size_t variantCacheSize() const;
  bool variantCached(const Config& config) const;
  std::uint64_t variantEvictions() const;

private:
  struct Variant {
    ir::Program program;
    perf::NestAnalysis analysis;
  };
  /// The cached (program, analysis) pair for a configuration's tile
  /// prefix. Returned shared so a concurrent eviction can never dangle an
  /// in-use variant.
  std::shared_ptr<const Variant> variantFor(const Config& config);

  kernels::KernelSpec kernel_;
  std::int64_t n_;
  analyzer::TransformationSkeleton skeleton_;
  perf::CostModel model_;
  std::vector<ParamSpec> space_;
  std::vector<Objective> objectives_;

  // Tile-indexed variant cache: thread sweeps over identical tile sizes
  // reuse the (expensive) footprint analysis. Keyed by the ConfigHash of
  // the tile prefix (no string key construction per lookup); the stored
  // tiles guard against hash collisions. Bounded by CLOCK second-chance
  // eviction: a hit sets the slot's referenced bit, a full insert sweeps
  // the hand over the slots, clearing bits until it finds an unreferenced
  // victim — recently used variants survive, instead of the whole working
  // set being dropped mid-search.
  struct CacheSlot {
    std::uint64_t key = 0;
    std::vector<std::int64_t> tiles;
    std::shared_ptr<const Variant> variant;
    bool referenced = false;
  };
  std::shared_ptr<const Variant> lookupLocked(std::uint64_t key,
                                              const Config& config,
                                              std::size_t tileDims);
  void insertLocked(std::uint64_t key, const Config& config,
                    std::size_t tileDims,
                    const std::shared_ptr<const Variant>& variant);

  mutable std::mutex cacheMutex_;
  std::size_t cacheCapacity_;
  std::vector<CacheSlot> slots_;
  std::unordered_map<std::uint64_t, std::uint32_t> slotIndex_;
  std::size_t clockHand_ = 0;
  std::uint64_t evictions_ = 0;
};

} // namespace motune::tuning
