#include "tuning/surrogate.h"

#include "observe/metrics.h"
#include "support/check.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace motune::tuning {

namespace {

/// Sign-preserving log1p: monotone everywhere, defined for any objective
/// scale (times, byte counts, synthetic negatives alike).
double signedLog(double y) {
  const double t = std::log1p(std::fabs(y));
  return y < 0.0 ? -t : t;
}

double inverseSignedLog(double t) {
  const double y = std::expm1(std::fabs(t));
  return t < 0.0 ? -y : y;
}

/// Solves (A + lambda*I) w = b by Gaussian elimination with partial
/// pivoting on a scratch copy. Returns false when the system is singular
/// to working precision (the caller keeps its previous weights).
bool solveRidge(std::vector<double> a, std::vector<double> b, double lambda,
                std::vector<double>& out) {
  const std::size_t n = b.size();
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += lambda;
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row)
      if (std::fabs(a[row * n + col]) > std::fabs(a[pivot * n + col]))
        pivot = row;
    if (std::fabs(a[pivot * n + col]) < 1e-12) return false;
    if (pivot != col) {
      for (std::size_t k = col; k < n; ++k)
        std::swap(a[col * n + k], a[pivot * n + k]);
      std::swap(b[col], b[pivot]);
    }
    for (std::size_t row = col + 1; row < n; ++row) {
      const double f = a[row * n + col] / a[col * n + col];
      if (f == 0.0) continue;
      for (std::size_t k = col; k < n; ++k) a[row * n + k] -= f * a[col * n + k];
      b[row] -= f * b[col];
    }
  }
  out.assign(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i * n + k] * out[k];
    out[i] = sum / (a[i * n + i]);
  }
  return true;
}

/// Spearman rank correlation via ordinal ranks (stable ties by index) —
/// an estimate, not a statistic with tie correction; deterministic.
double spearman(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) return 0.0;
  const auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(),
                     [&v](std::size_t a, std::size_t b) { return v[a] < v[b]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[order[i]] = static_cast<double>(i);
    return r;
  };
  const std::vector<double> rx = ranks(x), ry = ranks(y);
  const double mean = static_cast<double>(n - 1) / 2.0;
  double cov = 0.0, vx = 0.0, vy = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = rx[i] - mean, dy = ry[i] - mean;
    cov += dx * dy;
    vx += dx * dx;
    vy += dy * dy;
  }
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

} // namespace

Surrogate::Surrogate(std::vector<ParamSpec> space, std::size_t objectives,
                     SurrogateOptions options)
    : space_(std::move(space)), objectives_(objectives),
      options_(options) {
  MOTUNE_CHECK_MSG(!space_.empty(), "surrogate needs a non-empty space");
  MOTUNE_CHECK_MSG(objectives_ > 0, "surrogate needs at least one objective");
  const std::size_t d = space_.size();
  featureCount_ = 1 + 3 * d + d * (d - 1) / 2;
  accum_.gram.assign(featureCount_ * featureCount_, 0.0);
  accum_.moment.assign(objectives_,
                       std::vector<double>(featureCount_, 0.0));
  accum_.minLog.assign(objectives_, 0.0);
  accum_.maxLog.assign(objectives_, 0.0);
  preloaded_ = accum_;
}

std::vector<double> Surrogate::features(const Config& config) const {
  MOTUNE_CHECK_MSG(config.size() == space_.size(),
                   "config/space dimension mismatch in surrogate");
  const std::size_t d = space_.size();
  std::vector<double> z(d), zl(d);
  for (std::size_t i = 0; i < d; ++i) {
    const double lo = static_cast<double>(space_[i].lo);
    const double hi = static_cast<double>(space_[i].hi);
    const double c =
        std::clamp(static_cast<double>(config[i]), lo, hi);
    const double span = hi > lo ? hi - lo : 1.0;
    z[i] = (c - lo) / span;
    const double logSpan = std::log1p(span);
    zl[i] = logSpan > 0.0 ? std::log1p(c - lo) / logSpan : 0.0;
  }
  std::vector<double> phi;
  phi.reserve(featureCount_);
  phi.push_back(1.0);
  for (std::size_t i = 0; i < d; ++i) phi.push_back(z[i]);
  for (std::size_t i = 0; i < d; ++i) phi.push_back(z[i] * z[i]);
  for (std::size_t i = 0; i < d; ++i) phi.push_back(zl[i]);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = i + 1; j < d; ++j) phi.push_back(z[i] * z[j]);
  return phi;
}

void Surrogate::observe(const Config& config, const Objectives& objectives) {
  MOTUNE_CHECK_MSG(objectives.size() == objectives_,
                   "objective count mismatch in surrogate observation");
  const std::vector<double> phi = features(config);
  for (std::size_t i = 0; i < featureCount_; ++i)
    for (std::size_t j = 0; j < featureCount_; ++j)
      accum_.gram[i * featureCount_ + j] += phi[i] * phi[j];

  std::vector<double> logY(objectives_);
  for (std::size_t k = 0; k < objectives_; ++k) {
    const double ly = signedLog(objectives[k]);
    logY[k] = ly;
    for (std::size_t i = 0; i < featureCount_; ++i)
      accum_.moment[k][i] += phi[i] * ly;
    if (accum_.samples == 0) {
      accum_.minLog[k] = accum_.maxLog[k] = ly;
    } else {
      accum_.minLog[k] = std::min(accum_.minLog[k], ly);
      accum_.maxLog[k] = std::max(accum_.maxLog[k], ly);
    }
  }

  if (accum_.recent.size() < options_.correlationWindow) {
    accum_.recent.push_back({phi, std::move(logY)});
  } else if (!accum_.recent.empty()) {
    accum_.recent[accum_.recentNext] = {phi, std::move(logY)};
    accum_.recentNext = (accum_.recentNext + 1) % accum_.recent.size();
  }
  ++accum_.samples;

  if (accum_.samples >= options_.minSamples &&
      (!fitted_ || accum_.samples - samplesAtFit_ >= options_.refitEvery))
    refit();
}

void Surrogate::markPreloaded() {
  preloaded_ = accum_;
  preloadedFit_ = {weights_, fitted_, samplesAtFit_, fits_, rankCorrelation_};
}

void Surrogate::resetToPreloaded() {
  // Restore the fit verbatim instead of refitting: the mark is usually not
  // on the `minSamples + k*refitEvery` threshold grid, and a fit at the
  // mark would shift every subsequent refit (and cull decision) off the
  // uninterrupted run's schedule.
  accum_ = preloaded_;
  weights_ = preloadedFit_.weights;
  fitted_ = preloadedFit_.fitted;
  samplesAtFit_ = preloadedFit_.samplesAtFit;
  fits_ = preloadedFit_.fits;
  rankCorrelation_ = preloadedFit_.rankCorrelation;
}

void Surrogate::refit() {
  std::vector<std::vector<double>> next(objectives_);
  const double lambda =
      options_.ridgeLambda * static_cast<double>(accum_.samples);
  for (std::size_t k = 0; k < objectives_; ++k)
    if (!solveRidge(accum_.gram, accum_.moment[k], lambda, next[k]))
      return; // singular: keep previous weights, retry after more samples
  weights_ = std::move(next);
  fitted_ = true;
  samplesAtFit_ = accum_.samples;
  ++fits_;

  std::vector<double> predicted, actual;
  predicted.reserve(accum_.recent.size());
  actual.reserve(accum_.recent.size());
  for (const auto& r : accum_.recent) {
    predicted.push_back(scalarize(predictLog(r.phi)));
    actual.push_back(scalarize(r.logY));
  }
  rankCorrelation_ = spearman(predicted, actual);

  auto& metrics = observe::MetricsRegistry::global();
  metrics.counter("tuning.surrogate.fits").add(1);
  metrics.gauge("tuning.surrogate.rank_correlation").set(rankCorrelation_);
}

std::vector<double> Surrogate::predictLog(
    const std::vector<double>& phi) const {
  std::vector<double> out(objectives_, 0.0);
  for (std::size_t k = 0; k < objectives_; ++k) {
    double sum = 0.0;
    for (std::size_t i = 0; i < featureCount_; ++i)
      sum += weights_[k][i] * phi[i];
    out[k] = sum;
  }
  return out;
}

double Surrogate::scalarize(const std::vector<double>& logY) const {
  // Normalize each objective into the observed [min, max] log range, then
  // blend the best coordinate with the mean: the min term keeps
  // single-objective specialists (front endpoints) alive through the cull,
  // the mean term orders the all-rounders between them.
  double best = 0.0, sum = 0.0;
  for (std::size_t k = 0; k < objectives_; ++k) {
    const double span = accum_.maxLog[k] - accum_.minLog[k];
    const double norm =
        span > 0.0 ? (logY[k] - accum_.minLog[k]) / span : 0.0;
    if (k == 0 || norm < best) best = norm;
    sum += norm;
  }
  return best + 0.25 * (sum / static_cast<double>(objectives_));
}

Objectives Surrogate::predict(const Config& config) {
  MOTUNE_CHECK_MSG(fitted_, "surrogate predict before first fit");
  ++predictions_;
  observe::MetricsRegistry::global()
      .counter("tuning.surrogate.predictions")
      .add(1);
  const std::vector<double> logY = predictLog(features(config));
  Objectives out(objectives_);
  for (std::size_t k = 0; k < objectives_; ++k)
    out[k] = inverseSignedLog(logY[k]);
  return out;
}

double Surrogate::score(const Config& config) {
  MOTUNE_CHECK_MSG(fitted_, "surrogate score before first fit");
  ++predictions_;
  observe::MetricsRegistry::global()
      .counter("tuning.surrogate.predictions")
      .add(1);
  return scalarize(predictLog(features(config)));
}

} // namespace motune::tuning
