#include "tuning/search_space.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace motune::tuning {

Boundary Boundary::fromSpace(const std::vector<ParamSpec>& space) {
  Boundary b;
  for (const auto& p : space) {
    MOTUNE_CHECK(p.lo <= p.hi);
    b.lo.push_back(static_cast<double>(p.lo));
    b.hi.push_back(static_cast<double>(p.hi));
  }
  return b;
}

Config Boundary::closestTo(const std::vector<double>& x) const {
  MOTUNE_CHECK(x.size() == lo.size());
  Config c(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double clamped = std::clamp(x[i], lo[i], hi[i]);
    c[i] = static_cast<std::int64_t>(std::llround(clamped));
    // Rounding can escape a fractional boundary by one unit; re-clamp.
    c[i] = std::max<std::int64_t>(
        c[i], static_cast<std::int64_t>(std::ceil(lo[i])));
    c[i] = std::min<std::int64_t>(
        c[i], static_cast<std::int64_t>(std::floor(hi[i])));
  }
  return c;
}

bool Boundary::contains(const Config& c) const {
  MOTUNE_CHECK(c.size() == lo.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    const auto v = static_cast<double>(c[i]);
    if (v < lo[i] || v > hi[i]) return false;
  }
  return true;
}

Boundary Boundary::intersect(const Boundary& other) const {
  MOTUNE_CHECK(other.lo.size() == lo.size());
  Boundary out = *this;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    out.lo[i] = std::max(lo[i], other.lo[i]);
    out.hi[i] = std::min(hi[i], other.hi[i]);
    if (out.lo[i] > out.hi[i]) {
      const double mid = 0.5 * (lo[i] + hi[i]);
      out.lo[i] = out.hi[i] = mid;
    }
  }
  return out;
}

double Boundary::volume() const {
  double v = 1.0;
  for (std::size_t i = 0; i < lo.size(); ++i)
    v *= std::max(0.0, std::floor(hi[i]) - std::ceil(lo[i]) + 1.0);
  return v;
}

std::string Boundary::str() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < lo.size(); ++i) {
    if (i > 0) os << " x ";
    os << "[" << lo[i] << ", " << hi[i] << "]";
  }
  return os.str();
}

double spaceCardinality(const std::vector<ParamSpec>& space) {
  double card = 1.0;
  for (const auto& p : space)
    card *= static_cast<double>(p.hi - p.lo + 1);
  return card;
}

} // namespace motune::tuning
