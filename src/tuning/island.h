// Island-model distributed RS-GDE3 (`motune tune --islands N`).
//
// N islands each run an independent, analytically seeded RS-GDE3 instance
// (distinct RNG seed per island) and exchange their top-ranked individuals
// every `migrateEvery` generations over a deterministic ring: at migration
// round r (generation r * migrateEvery) island k publishes its `migrants`
// best members, then integrates round r's emigrants of island (k-1) mod N.
// Publication precedes the fetch, and the fetch blocks until the
// neighbour's round-r record exists (or the neighbour has provably
// terminated earlier), so the dataflow between islands — and therefore
// every island's trajectory and the merged Pareto front — is a pure
// function of (problem, options, island count): bit-identical across
// reruns, thread-pool sizes and exchange media.
//
// Exchange media: an in-process MemoryExchange (no persistence) or a
// JournalExchange of per-island append-only journals
// (`DIR/island-<k>/migrants.jsonl`, same torn-tail-tolerant format as the
// session journal) that worker *processes* share through the filesystem.
// Islands under a session directory also keep an ordinary RS-GDE3 session
// (`DIR/island-<k>/session.jsonl`), so a SIGKILLed island resumes through
// the existing checkpoint machinery; its migrant journal is append-only
// and replayed rounds are skipped, so peers never observe a duplicate or
// retracted record. The record schema is specified field by field in
// docs/search.md ("Migrant wire format").
#pragma once

#include "core/rsgde3.h"
#include "session/session.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace motune::tuning {

/// `DIR/island-<k>` — one island's session directory.
std::string islandDirectory(const std::string& directory, int island);

/// `DIR/island-<k>/migrants.jsonl` — one island's migrant journal.
std::string migrantJournalPath(const std::string& directory, int island);

/// Migrant transport between islands. Implementations must make fetch()
/// return the same individuals for the same (island, round) on every call
/// and every rerun — published records are immutable — which is what the
/// determinism contract of the merged front rests on.
class MigrantExchange {
public:
  virtual ~MigrantExchange() = default;

  /// Publishes island `island`'s round-`round` emigrants. Returns false
  /// when the round was already published (a resumed island replaying
  /// generations past its last checkpoint) — the original record stands
  /// and nothing is written, so peers see each round exactly once.
  virtual bool publish(int island, int round, int generation,
                       const std::vector<opt::Individual>& emigrants) = 0;

  /// Round-`round` emigrants of island `from`. Blocks (polling) until the
  /// record exists, `from` has retired before that round (empty result),
  /// or `stop` returns true (empty result; the caller is being cancelled
  /// and discards its partial state).
  virtual std::vector<opt::Individual>
  fetch(int from, int round, const std::function<bool()>& stop) = 0;

  /// Marks `island` cleanly terminated after `generation` generations:
  /// `round` = floor(generation / migrateEvery) is the last round it
  /// published; fetches for later rounds resolve to empty immediately.
  virtual void retire(int island, int round, int generation,
                      std::uint64_t evaluations) = 0;
};

/// In-process exchange for tests and sessionless `--islands N` runs:
/// records live in a mutex-guarded map, fetch blocks on a condition
/// variable. Same protocol as JournalExchange, so trajectories are
/// identical whichever medium carries the migrants.
class MemoryExchange final : public MigrantExchange {
public:
  bool publish(int island, int round, int generation,
               const std::vector<opt::Individual>& emigrants) override;
  std::vector<opt::Individual>
  fetch(int from, int round, const std::function<bool()>& stop) override;
  void retire(int island, int round, int generation,
              std::uint64_t evaluations) override;

private:
  std::mutex mutex_;
  std::condition_variable arrived_;
  std::map<std::pair<int, int>, std::vector<opt::Individual>> records_;
  std::map<int, int> retired_; ///< island -> last published round
};

/// Filesystem exchange over per-island migrant journals. Readers tolerate
/// a torn tail (a record mid-append or cut by a SIGKILL) by treating the
/// journal as if the torn record were not yet written — the next poll
/// re-reads the file; mid-file corruption stays a hard error. A fetch
/// whose record is not yet visible counts one `tuning.island.stale_reads`
/// per poll attempt (the lagging-island signal).
class JournalExchange final : public MigrantExchange {
public:
  /// `islands`, `migrateEvery`, `migrants` and `seed` describe the run the
  /// exchange belongs to; they are stamped into (and on resume validated
  /// against) each island's migrant-journal header record.
  JournalExchange(std::string directory, int islands, int migrateEvery,
                  std::size_t migrants, std::uint64_t seed);

  /// Opens island `island`'s migrant journal for writing: fresh mode
  /// writes the header record, resume mode validates the existing header
  /// and scans the rounds already published (exactly-once republish).
  /// A process only attaches the islands it runs; fetch needs no attach.
  void attach(int island, bool resume);

  bool publish(int island, int round, int generation,
               const std::vector<opt::Individual>& emigrants) override;
  std::vector<opt::Individual>
  fetch(int from, int round, const std::function<bool()>& stop) override;
  void retire(int island, int round, int generation,
              std::uint64_t evaluations) override;

  /// Non-blocking probe: the round's emigrants if its record (or a retire
  /// record proving it will never exist) is visible, std::nullopt while
  /// the peer lags or its journal tail is torn. fetch() is a poll loop
  /// over this; tests drive it directly.
  std::optional<std::vector<opt::Individual>> tryFetch(int from, int round);

  /// Poll interval of fetch(), milliseconds (test hook).
  void setPollIntervalMs(int ms) { pollMs_ = ms; }

private:
  struct Attached {
    std::unique_ptr<session::JournalWriter> writer;
    std::set<int> publishedRounds;
    bool retired = false;
  };

  std::string directory_;
  int islands_;
  int migrateEvery_;
  std::size_t migrants_;
  std::uint64_t seed_;
  int pollMs_ = 10;
  std::mutex mutex_;
  std::map<int, Attached> attached_;
};

/// One island-model run. The merged result is assembled deterministically:
/// front = the non-dominated subset of the islands' fronts concatenated in
/// island order, evaluations = sum over islands (each island pays for its
/// own memoized evaluations), generations = the maximum, population = the
/// concatenation, hvHistory = island 0's trajectory.
struct IslandOptions {
  int islands = 2;
  int migrateEvery = 5;     ///< generations between migration rounds
  std::size_t migrants = 3; ///< emigrants per island per round
  /// Worker-process mode: run only this island (>= 0) against the shared
  /// directory; another invocation merges once all islands finished. -1
  /// runs every island on in-process threads and merges directly.
  int islandIndex = -1;
  /// Shared session directory; empty = in-memory exchange, no persistence
  /// (islandIndex then must be -1).
  std::string directory;
  int checkpointEvery = 1;
  bool resume = false;
  bool reduction = true; ///< false = plain GDE3 islands
  /// Base engine options. Island k runs with seed = gde3.seed + k and
  /// initialSeeds rotated by k (every island knows all analytic seeds but
  /// plants them in different population slots).
  opt::GDE3Options gde3;
  std::vector<Config> seeds; ///< analytic seeds (may be empty)
  /// Session-header factory for island k (the caller owns the algorithm
  /// options blob format); required when `directory` is set.
  std::function<session::SessionHeader(int island, std::uint64_t seed)>
      makeHeader;
  std::function<bool()> stopRequested;
  /// Per-generation progress, forwarded from island 0 only (a single
  /// monotone generation stream for the serve layer's subscribers).
  std::function<void(const opt::GenerationProgress&)> onProgress;
};

struct IslandRun {
  opt::OptResult merged;
  bool cancelled = false; ///< stopRequested fired; no finish/retire records
  /// Session provenance, aggregated over the islands this invocation
  /// touched (zero / empty without a directory).
  std::string journal; ///< island 0's session journal path
  std::uint64_t checkpoints = 0;
  int resumes = 0;
  std::uint64_t recordedEvaluations = 0;
};

/// Runs the island model over `fn`. In worker mode the merged result is
/// the single island's own snapshot (callers treat it as provisional; the
/// merge invocation produces the real front). Thread-safe use of `fn` is
/// required (islands evaluate concurrently), which ObjectiveFunction
/// already demands.
IslandRun runIslands(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                     const IslandOptions& options);

} // namespace motune::tuning
