// Search-space abstractions shared by the optimizers.
//
// A configuration is an integer vector instantiating a transformation
// skeleton's unbound parameters ("all tuning options, including ... tile
// sizes and thread count specifications are modeled uniformly", paper
// §III.B.1). The Boundary type is the rough-set-reduced hyper-rectangle the
// GDE3 variation operator projects trial vectors into (Algorithm 1,
// line 11: B.getClosestTo(r)).
#pragma once

#include "analyzer/region.h" // ParamSpec

#include <cstdint>
#include <string>
#include <vector>

namespace motune::tuning {

using analyzer::ParamSpec;

/// A point of the search space: one integer value per parameter.
using Config = std::vector<std::int64_t>;

/// Objective values of an evaluated configuration (all minimized).
using Objectives = std::vector<double>;

/// Axis-aligned hyper-rectangle over the parameters, in continuous space.
struct Boundary {
  std::vector<double> lo; ///< inclusive
  std::vector<double> hi; ///< inclusive

  static Boundary fromSpace(const std::vector<ParamSpec>& space);

  std::size_t dims() const { return lo.size(); }

  /// Projects a continuous trial vector to the closest valid configuration
  /// inside the boundary (clamp each coordinate, then round to integer).
  Config closestTo(const std::vector<double>& x) const;

  /// True if the (integer) configuration lies inside the boundary.
  bool contains(const Config& c) const;

  /// Intersects with another boundary; empty dimensions collapse to the
  /// midpoint of this boundary (defensive, should not happen in practice).
  Boundary intersect(const Boundary& other) const;

  /// Number of integer configurations inside the boundary (saturating
  /// double) — the observability layer reports it per generation to show
  /// how far the rough-set reduction shrank the search space.
  double volume() const;

  std::string str() const;
};

/// Hash for Config, usable with std::unordered_map (FNV-style combine).
struct ConfigHash {
  std::size_t operator()(const Config& c) const noexcept {
    return hashSpan(c.data(), c.size());
  }

  /// Hash of the first `n` coordinates only — the tile prefix of a full
  /// configuration. The variant cache keys on this instead of building a
  /// string per lookup.
  static std::size_t hashPrefix(const Config& c, std::size_t n) noexcept {
    return hashSpan(c.data(), n < c.size() ? n : c.size());
  }

  static std::size_t hashSpan(const std::int64_t* v, std::size_t n) noexcept {
    std::size_t h = 1469598103934665603ull;
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<std::size_t>(v[i]) + 0x9e3779b97f4a7c15ull + (h << 6) +
           (h >> 2);
      h *= 1099511628211ull;
    }
    return h;
  }
};

/// The full search-space volume (number of integer points), saturating.
double spaceCardinality(const std::vector<ParamSpec>& space);

} // namespace motune::tuning
