#include "tuning/seed.h"

#include "perfmodel/footprint.h"
#include "support/check.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace motune::tuning {

namespace {

/// Maps a scale factor s in [0, 1] and per-dimension shape weights to a
/// full configuration (tile sizes; the thread slot is filled by the
/// caller). s = 0 is the smallest legal tile in every dimension, s = 1 the
/// largest the profile allows.
Config tilesFor(const std::vector<ParamSpec>& space, std::size_t tileDims,
                double s, const std::vector<double>& weights) {
  Config c(space.size(), 1);
  for (std::size_t i = 0; i < tileDims; ++i) {
    const double lo = static_cast<double>(space[i].lo);
    const double hi = static_cast<double>(space[i].hi);
    const double v = lo + s * weights[i] * (hi - lo);
    c[i] = std::clamp(static_cast<std::int64_t>(std::llround(v)),
                      space[i].lo, space[i].hi);
  }
  return c;
}

/// Distinct bytes one tile touches: the footprint of the point-loop
/// sub-nest of the instantiated variant. The tiled nest is tile loops
/// outer, point loops inner, so the point loops are the innermost
/// tileDims levels.
double tileFootprintBytes(const KernelTuningProblem& problem,
                          const Config& config, std::size_t tileDims,
                          std::int64_t lineBytes) {
  const ir::Program variant = problem.instantiate(config);
  const perf::NestAnalysis na = perf::analyzeNest(variant);
  const std::size_t level =
      na.loops.size() >= tileDims ? na.loops.size() - tileDims : 0;
  return perf::totalFootprintBytes(na, level, lineBytes);
}

} // namespace

std::vector<Config> analyticSeeds(const KernelTuningProblem& problem,
                                  const SeedOptions& options) {
  MOTUNE_CHECK(options.maxSeeds > 0);
  MOTUNE_CHECK(options.fitFraction > 0.0 && options.fitFraction <= 1.0);
  const std::vector<ParamSpec>& space = problem.space();
  const std::size_t tileDims = problem.skeleton().tileDepth();
  if (tileDims == 0 || space.size() != tileDims + 1) return {};
  const machine::MachineModel& m = problem.machine();
  if (m.caches.empty()) return {};

  // Thread-count candidates: serial, one full socket, the whole machine —
  // the three placement regimes with distinct effective cache capacities
  // (shared levels are sliced per co-located thread).
  const std::int64_t threadLo = space[tileDims].lo;
  const std::int64_t threadHi = space[tileDims].hi;
  std::vector<std::int64_t> threadCandidates;
  for (std::int64_t t :
       {std::int64_t{1}, static_cast<std::int64_t>(m.coresPerSocket),
        threadHi}) {
    t = std::clamp(t, threadLo, threadHi);
    if (std::find(threadCandidates.begin(), threadCandidates.end(), t) ==
        threadCandidates.end())
      threadCandidates.push_back(t);
  }

  // Shape profiles: equal tile extents, and innermost-heavy (the innermost
  // tile keeps its full range while outer tiles shrink — the profile that
  // preserves unit-stride spatial locality, standing in for an explicit
  // interchange-order solve since the skeleton fixes the loop order).
  std::vector<std::vector<double>> profiles;
  profiles.emplace_back(tileDims, 1.0);
  if (tileDims > 1) {
    std::vector<double> heavy(tileDims, 0.35);
    heavy.back() = 1.0;
    profiles.push_back(std::move(heavy));
  }

  // One candidate list per thread count, later interleaved round-robin so
  // the maxSeeds cap keeps every placement regime represented.
  std::vector<std::vector<Config>> perThread(threadCandidates.size());
  for (std::size_t ti = 0; ti < threadCandidates.size(); ++ti) {
    const std::int64_t threads = threadCandidates[ti];
    for (std::size_t level = 0; level < m.caches.size(); ++level) {
      const std::int64_t lineBytes = m.caches[level].lineBytes;
      const double budget =
          options.fitFraction *
          m.effectiveCapacityPerThread(level, static_cast<int>(threads));
      if (budget <= 0.0) continue;
      for (const std::vector<double>& weights : profiles) {
        const auto footprintAt = [&](double s) {
          Config c = tilesFor(space, tileDims, s, weights);
          c[tileDims] = threads;
          return tileFootprintBytes(problem, c, tileDims, lineBytes);
        };
        // Largest scale whose tile still fits the budget. The footprint is
        // monotone non-decreasing in the scale, so 32 bisection steps pin
        // the integer tile vector exactly; the iteration count is fixed,
        // keeping the result bit-reproducible.
        double s = 0.0;
        if (footprintAt(1.0) <= budget) {
          s = 1.0;
        } else if (footprintAt(0.0) <= budget) {
          double lo = 0.0, hi = 1.0;
          for (int iter = 0; iter < 32; ++iter) {
            const double mid = 0.5 * (lo + hi);
            (footprintAt(mid) <= budget ? lo : hi) = mid;
          }
          s = lo;
        }
        Config c = tilesFor(space, tileDims, s, weights);
        c[tileDims] = threads;
        perThread[ti].push_back(std::move(c));
      }
    }
  }

  std::vector<Config> seeds;
  std::set<Config> seen;
  for (std::size_t offset = 0; seeds.size() < options.maxSeeds; ++offset) {
    bool any = false;
    for (const std::vector<Config>& list : perThread) {
      if (offset >= list.size()) continue;
      any = true;
      if (seeds.size() < options.maxSeeds && seen.insert(list[offset]).second)
        seeds.push_back(list[offset]);
    }
    if (!any) break;
  }
  return seeds;
}

} // namespace motune::tuning
