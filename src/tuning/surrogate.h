// Online surrogate model for evaluation pre-ranking.
//
// A ridge regression per objective over a fixed-order polynomial feature
// map of the configuration, fit incrementally from the (config ->
// objectives) pairs the search evaluates (and, for warm starts, from the
// eval records of prior compatible session journals). The optimizer scores
// each generation's candidate offspring with the surrogate first and sends
// only the most promising fraction to the full cost-model evaluation
// (GDE3Options::surrogate / surrogateKeep).
//
// Determinism contract: the model is a pure function of the observation
// sequence — fixed feature order, threshold-triggered refits, pivoted
// Gaussian elimination, no random draws. Replaying the same observations
// (e.g. from a session journal or the optimizer's archive on restore)
// reproduces every prediction bit for bit, at any thread-pool size.
//
// Exports tuning.surrogate.{fits,predictions,warmstart.*} counters and the
// tuning.surrogate.rank_correlation gauge through the global metric
// registry; the optimizer adds tuning.surrogate.culled.
#pragma once

#include "tuning/search_space.h"

#include <cstdint>
#include <vector>

namespace motune::tuning {

struct SurrogateOptions {
  double ridgeLambda = 1e-3;          ///< L2 strength, scaled by sample count
  std::size_t refitEvery = 16;        ///< observations between refits
  std::size_t minSamples = 60;        ///< no predictions before this many
  std::size_t correlationWindow = 128; ///< recent samples for the estimate
};

class Surrogate {
public:
  Surrogate(std::vector<ParamSpec> space, std::size_t objectives,
            SurrogateOptions options = {});

  /// Fixed-order feature map of a configuration: bias, normalized
  /// coordinates, their squares, normalized log-scale coordinates, and
  /// pairwise products. Deterministic; exposed for the journal round-trip
  /// property test.
  std::vector<double> features(const Config& config) const;
  std::size_t featureCount() const { return featureCount_; }
  std::size_t objectiveCount() const { return objectives_; }

  /// Feeds one evaluated configuration; refits on the configured schedule.
  void observe(const Config& config, const Objectives& objectives);

  /// Snapshots the current state — observations AND the fitted model
  /// (weights, refit position, rank correlation) — as the warm-start base
  /// so that resetToPreloaded() can drop everything observed after this
  /// point (used when an optimizer restores from a checkpoint and replays
  /// its archive to rebuild the surrogate deterministically). The fit
  /// state is restored verbatim, not refit: a refit at the mark would put
  /// the next refit on a `markSamples + refitEvery` grid, which diverges
  /// from the uninterrupted run's `minSamples + k*refitEvery` grid
  /// whenever the mark is not threshold-aligned — and with it every later
  /// cull decision.
  void markPreloaded();
  void resetToPreloaded();

  /// True once enough samples accumulated for a first fit.
  bool ready() const { return fitted_; }

  /// Predicted objective vector (model scale). Counts as one prediction.
  Objectives predict(const Config& config);

  /// Scalar ranking key, lower is better: a blend of the best and the mean
  /// normalized predicted objective, so both specialists and all-rounders
  /// survive the cull. Counts as one prediction.
  double score(const Config& config);

  std::uint64_t observations() const { return accum_.samples; }
  std::uint64_t fits() const { return fits_; }
  std::uint64_t predictions() const { return predictions_; }

  /// Spearman rank correlation between predicted and actual scalar scores
  /// over the recent-sample window, refreshed on every refit. 0 until the
  /// first fit; 1 is a perfect ranking.
  double rankCorrelation() const { return rankCorrelation_; }

private:
  struct Accum {
    std::vector<double> gram;                 ///< featureCount^2, row-major
    std::vector<std::vector<double>> moment;  ///< per objective
    std::vector<double> minLog, maxLog;       ///< per objective, running
    struct Recent {
      std::vector<double> phi;
      std::vector<double> logY;
    };
    std::vector<Recent> recent;               ///< rank-correlation window
    std::size_t recentNext = 0;
    std::uint64_t samples = 0;
  };

  void refit();
  std::vector<double> predictLog(const std::vector<double>& phi) const;
  double scalarize(const std::vector<double>& logY) const;

  std::vector<ParamSpec> space_;
  std::size_t objectives_;
  SurrogateOptions options_;
  std::size_t featureCount_;

  /// The fitted-model half of a markPreloaded() snapshot; Accum holds the
  /// observation half.
  struct FitState {
    std::vector<std::vector<double>> weights;
    bool fitted = false;
    std::uint64_t samplesAtFit = 0;
    std::uint64_t fits = 0;
    double rankCorrelation = 0.0;
  };

  Accum accum_;
  Accum preloaded_;
  FitState preloadedFit_;
  std::vector<std::vector<double>> weights_; ///< per objective, post-fit
  bool fitted_ = false;
  std::uint64_t samplesAtFit_ = 0;
  std::uint64_t fits_ = 0;
  std::uint64_t predictions_ = 0;
  double rankCorrelation_ = 0.0;
};

} // namespace motune::tuning
