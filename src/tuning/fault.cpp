#include "tuning/fault.h"

#include "support/check.h"

#include <chrono>
#include <cstdlib>
#include <thread>

namespace motune::tuning {

namespace {

void sleepSeconds(double seconds) {
  if (seconds <= 0.0) return;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

} // namespace

FaultSpec FaultSpec::parse(const std::string& text) {
  FaultSpec spec;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t end = text.find(',', pos);
    if (end == std::string::npos) end = text.size();
    const std::string rule = text.substr(pos, end - pos);
    pos = end + 1;
    if (rule.empty()) continue;

    const std::size_t at = rule.find('@');
    MOTUNE_CHECK_MSG(at != std::string::npos,
                     "bad MOTUNE_FAULT_SPEC rule (missing '@'): " + rule);
    const std::string verb = rule.substr(0, at);
    std::string rest = rule.substr(at + 1);

    FaultRule r;
    if (verb == "fail") r.action = FaultRule::Action::Fail;
    else if (verb == "hang") r.action = FaultRule::Action::Hang;
    else if (verb == "delay") r.action = FaultRule::Action::Delay;
    else MOTUNE_CHECK_MSG(false, "bad MOTUNE_FAULT_SPEC action: " + verb +
                                     " (expected fail|hang|delay)");

    // Duration suffix: ":S" (hang/delay).
    const std::size_t colon = rest.find(':');
    if (colon != std::string::npos) {
      r.seconds = std::stod(rest.substr(colon + 1));
      rest = rest.substr(0, colon);
    }
    // Repeat suffix: "xK" (fail@NxK).
    const std::size_t x = rest.find('x');
    if (x != std::string::npos) {
      r.count = std::stoull(rest.substr(x + 1));
      MOTUNE_CHECK_MSG(r.count >= 1, "bad repeat count in rule: " + rule);
      rest = rest.substr(0, x);
    }
    if (rest == "*") {
      r.first = 0;
    } else {
      r.first = std::stoull(rest);
      MOTUNE_CHECK_MSG(r.first >= 1,
                       "evaluation indices are 1-based in rule: " + rule);
    }
    MOTUNE_CHECK_MSG(r.action == FaultRule::Action::Fail || r.seconds > 0.0,
                     "hang/delay rules need a ':seconds' duration: " + rule);
    spec.rules.push_back(r);
  }
  return spec;
}

std::optional<FaultSpec> FaultSpec::fromEnv() {
  const char* env = std::getenv("MOTUNE_FAULT_SPEC");
  if (env == nullptr || *env == '\0') return std::nullopt;
  FaultSpec spec = parse(env);
  if (spec.empty()) return std::nullopt;
  return spec;
}

FaultInjectingEvaluator::FaultInjectingEvaluator(ObjectiveFunction& inner,
                                                 FaultSpec spec)
    : inner_(inner), spec_(std::move(spec)) {}

Objectives FaultInjectingEvaluator::evaluate(const Config& config) {
  const std::uint64_t call = calls_.fetch_add(1) + 1;
  for (const FaultRule& rule : spec_.rules) {
    if (!rule.matches(call)) continue;
    switch (rule.action) {
    case FaultRule::Action::Fail:
      throw EvaluationFault("injected failure at evaluation #" +
                            std::to_string(call));
    case FaultRule::Action::Hang:
    case FaultRule::Action::Delay:
      sleepSeconds(rule.seconds);
      break;
    }
  }
  return inner_.evaluate(config);
}

FaultTolerantEvaluator::FaultTolerantEvaluator(ObjectiveFunction& primary,
                                               FaultPolicy policy,
                                               ObjectiveFunction* fallback)
    : primary_(primary), policy_(policy), fallback_(fallback),
      failures_(observe::MetricsRegistry::global().counter("fault.failures")),
      retries_(observe::MetricsRegistry::global().counter("fault.retries")),
      timeouts_(observe::MetricsRegistry::global().counter("fault.timeouts")),
      fallbacks_(
          observe::MetricsRegistry::global().counter("fault.fallbacks")),
      quarantined_(
          observe::MetricsRegistry::global().counter("fault.quarantined")),
      quarantineHits_(observe::MetricsRegistry::global().counter(
          "fault.quarantine_hits")) {
  MOTUNE_CHECK(policy_.maxRetries >= 0);
  if (fallback_ != nullptr)
    MOTUNE_CHECK_MSG(fallback_->numObjectives() == primary_.numObjectives(),
                     "fault fallback objective count differs from primary");
}

FaultTolerantEvaluator::~FaultTolerantEvaluator() {
  // Timed-out attempts still run on detached async threads referencing the
  // primary; wait for them so the primary can be destroyed safely.
  std::vector<std::future<Objectives>> abandoned;
  {
    std::lock_guard lock(mutex_);
    abandoned.swap(abandoned_);
  }
  for (auto& f : abandoned) {
    try {
      f.wait();
    } catch (...) {
    }
  }
}

void FaultTolerantEvaluator::reapAbandoned() {
  std::lock_guard lock(mutex_);
  std::erase_if(abandoned_, [](std::future<Objectives>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
}

Objectives FaultTolerantEvaluator::attemptOnce(const Config& config) {
  if (policy_.timeoutSeconds <= 0.0) return primary_.evaluate(config);

  auto future = std::async(std::launch::async,
                           [this, config] { return primary_.evaluate(config); });
  if (future.wait_for(std::chrono::duration<double>(
          policy_.timeoutSeconds)) == std::future_status::ready)
    return future.get();

  // The attempt hung: abandon it (the helper thread keeps running until
  // the evaluation returns; the destructor joins) and report a timeout.
  {
    std::lock_guard lock(mutex_);
    abandoned_.push_back(std::move(future));
  }
  timeouts_.add();
  throw EvaluationFault("evaluation timed out after " +
                        std::to_string(policy_.timeoutSeconds) + " s");
}

bool FaultTolerantEvaluator::isQuarantined(const Config& config) const {
  std::lock_guard lock(mutex_);
  return quarantine_.count(config) > 0;
}

std::size_t FaultTolerantEvaluator::quarantinedCount() const {
  std::lock_guard lock(mutex_);
  return quarantine_.size();
}

void FaultTolerantEvaluator::noteExhausted(const Config& config) {
  std::lock_guard lock(mutex_);
  if (quarantine_.count(config) > 0) return;
  if (++exhaustedCalls_[config] >= policy_.quarantineAfter) {
    quarantine_.insert(config);
    quarantined_.add();
  }
}

Objectives FaultTolerantEvaluator::degrade(const Config& config,
                                           std::exception_ptr error) {
  if (fallback_ != nullptr) {
    fallbacks_.add();
    return fallback_->evaluate(config);
  }
  MOTUNE_CHECK(error != nullptr);
  std::rethrow_exception(error);
}

Objectives FaultTolerantEvaluator::evaluate(const Config& config) {
  reapAbandoned();
  if (isQuarantined(config)) {
    quarantineHits_.add();
    return degrade(config,
                   std::make_exception_ptr(EvaluationFault(
                       "configuration is quarantined and no fallback "
                       "evaluator is configured")));
  }

  std::exception_ptr last;
  for (int attempt = 0; attempt <= policy_.maxRetries; ++attempt) {
    if (attempt > 0) {
      retries_.add();
      const double backoff =
          policy_.backoffSeconds * static_cast<double>(1u << (attempt - 1));
      sleepSeconds(std::min(backoff, policy_.backoffMaxSeconds));
    }
    try {
      return attemptOnce(config);
    } catch (...) {
      failures_.add();
      last = std::current_exception();
    }
  }

  noteExhausted(config);
  return degrade(config, last);
}

} // namespace motune::tuning
