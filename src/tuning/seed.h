// Analytic seeding of the GDE3 initial population (`motune tune
// --seed-analytic`).
//
// The perfmodel already carries closed-form working-set expressions per
// tile parameter (perfmodel/footprint.h): one tile's footprint is the
// distinct-bytes count of the point-loop sub-nest, a monotone function of
// the tile sizes. Solving that expression against each cache level's
// per-thread effective capacity — the same fitFraction * capacity
// constraint the cost model's mStar level selection uses — yields
// cache-capacity-constrained tile products that land inside the model's
// sweet spots before a single evaluation is spent. Seeds are injected via
// GDE3Options::initialSeeds, which overwrites initial population slots
// without touching the RNG stream, so seeding is deterministic and
// bit-reproducible (docs/search.md, "Analytic seeding").
#pragma once

#include "tuning/kernel_problem.h"

namespace motune::tuning {

struct SeedOptions {
  /// Cap on the number of seeds produced. Candidates are interleaved
  /// round-robin across thread-count candidates before truncation, so the
  /// cap never starves a thread count entirely.
  std::size_t maxSeeds = 8;
  /// Fraction of a cache level's per-thread effective capacity one tile's
  /// working set is solved to occupy; matches perf::CostParams::fitFraction
  /// so seeds sit exactly where the cost model's level-fit test flips.
  double fitFraction = 0.70;
};

/// Derives high-quality starting configurations for `problem`: for every
/// cache level, thread-count candidate (serial / one socket / all cores)
/// and tile-shape profile (uniform, innermost-heavy), bisects a tile-scale
/// factor until the tile footprint meets the capacity constraint. Pure
/// function of the problem and options — deterministic, no RNG, no
/// objective evaluations. Duplicates are removed; at most
/// `options.maxSeeds` configurations are returned.
std::vector<Config> analyticSeeds(const KernelTuningProblem& problem,
                                  const SeedOptions& options = {});

} // namespace motune::tuning
