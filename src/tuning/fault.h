// Fault-tolerant evaluation: long tuning campaigns must survive evaluator
// failures — a native kernel run that crashes, hangs, or gets OOM-killed —
// without aborting the whole search or poisoning the Pareto set.
//
// FaultTolerantEvaluator wraps any ObjectiveFunction with
//   * a per-evaluation timeout (the evaluation runs on a helper thread;
//     on expiry the result is abandoned and counted as a failure),
//   * bounded retry with exponential backoff,
//   * a quarantine list: a configuration whose evaluations keep failing is
//     banned from further primary attempts,
//   * graceful degradation: an optional fallback evaluator (typically the
//     analytical model standing behind a native evaluator) scores the
//     configuration when the primary is exhausted or quarantined.
// Everything is surfaced as fault.* metrics through the observe layer.
//
// FaultInjectingEvaluator is the deterministic test hook: the
// MOTUNE_FAULT_SPEC environment variable describes faults by global
// evaluation index, e.g.
//   MOTUNE_FAULT_SPEC="fail@17x2,hang@40:0.5,delay@*:0.004"
// fails evaluation calls 17 and 18 ("fail eval #17 twice" — the retry of
// call 17 is call 18), makes call 40 hang for 0.5 s, and stretches every
// call by 4 ms (used by the kill-resume CI job to widen the kill window).
// tests/fault_test.cpp and the CI jobs are the intended users; production
// runs leave the variable unset.
#pragma once

#include "observe/metrics.h"
#include "tuning/kernel_problem.h"

#include <atomic>
#include <future>
#include <mutex>
#include <optional>
#include <set>
#include <unordered_map>
#include <vector>

namespace motune::tuning {

/// One deterministic fault rule parsed from MOTUNE_FAULT_SPEC.
struct FaultRule {
  enum class Action {
    Fail,  ///< throw EvaluationFault
    Hang,  ///< sleep `seconds` before evaluating (timeouts see a hang)
    Delay, ///< sleep `seconds` before evaluating (no failure implied)
  };
  Action action = Action::Fail;
  std::uint64_t first = 0; ///< 1-based evaluation call index; 0 = every call
  std::uint64_t count = 1; ///< consecutive calls affected
  double seconds = 0.0;    ///< hang/delay duration

  bool matches(std::uint64_t call) const {
    if (first == 0) return true;
    return call >= first && call < first + count;
  }
};

/// Parsed MOTUNE_FAULT_SPEC. Grammar (comma-separated rules):
///   fail@N[xK]   fail calls N .. N+K-1 (K defaults to 1)
///   hang@N:S     call N sleeps S seconds before evaluating
///   delay@*:S    every call sleeps S seconds (N also accepted)
struct FaultSpec {
  std::vector<FaultRule> rules;

  bool empty() const { return rules.empty(); }

  /// Throws support::CheckError on malformed input.
  static FaultSpec parse(const std::string& text);

  /// Reads MOTUNE_FAULT_SPEC; nullopt when unset or empty.
  static std::optional<FaultSpec> fromEnv();
};

/// The failure FaultInjectingEvaluator throws and FaultTolerantEvaluator
/// treats as a (retryable) evaluation fault.
class EvaluationFault : public std::runtime_error {
public:
  explicit EvaluationFault(const std::string& what)
      : std::runtime_error(what) {}
};

/// Deterministic fault injector (test/CI hook); thread-safe — the call
/// counter is atomic, so under parallel evaluation rule indices select
/// *some* evaluation deterministically per schedule, not a fixed config.
class FaultInjectingEvaluator final : public ObjectiveFunction {
public:
  FaultInjectingEvaluator(ObjectiveFunction& inner, FaultSpec spec);

  std::size_t numObjectives() const override { return inner_.numObjectives(); }
  const std::vector<ParamSpec>& space() const override {
    return inner_.space();
  }
  Objectives evaluate(const Config& config) override;

  std::uint64_t calls() const { return calls_.load(); }

private:
  ObjectiveFunction& inner_;
  FaultSpec spec_;
  std::atomic<std::uint64_t> calls_{0};
};

/// Retry/timeout/quarantine policy. Backoff before retry k (k = 1..) is
/// backoffSeconds * 2^(k-1), capped at backoffMaxSeconds.
struct FaultPolicy {
  bool enabled = false;        ///< AutoTuner wraps the evaluator when true
  int maxRetries = 2;          ///< retries after the first attempt
  double timeoutSeconds = 0.0; ///< per-attempt wall limit; 0 = none
  double backoffSeconds = 0.0; ///< base backoff between attempts; 0 = none
  double backoffMaxSeconds = 1.0;
  int quarantineAfter = 3; ///< exhausted calls before a config is banned
};

class FaultTolerantEvaluator final : public ObjectiveFunction {
public:
  /// `fallback` (optional) scores configurations the primary cannot; it
  /// must share the primary's space and objective count. Both must outlive
  /// this wrapper. The destructor joins abandoned (timed-out) attempts.
  FaultTolerantEvaluator(ObjectiveFunction& primary, FaultPolicy policy,
                         ObjectiveFunction* fallback = nullptr);
  ~FaultTolerantEvaluator() override;

  std::size_t numObjectives() const override {
    return primary_.numObjectives();
  }
  const std::vector<ParamSpec>& space() const override {
    return primary_.space();
  }
  Objectives evaluate(const Config& config) override;

  bool isQuarantined(const Config& config) const;
  std::size_t quarantinedCount() const;

private:
  Objectives attemptOnce(const Config& config); ///< timeout-aware
  Objectives degrade(const Config& config, std::exception_ptr error);
  void noteExhausted(const Config& config);
  void reapAbandoned();

  ObjectiveFunction& primary_;
  FaultPolicy policy_;
  ObjectiveFunction* fallback_;

  mutable std::mutex mutex_;
  std::unordered_map<Config, int, ConfigHash> exhaustedCalls_;
  std::set<Config> quarantine_;
  std::vector<std::future<Objectives>> abandoned_; ///< timed-out attempts

  observe::Counter& failures_;
  observe::Counter& retries_;
  observe::Counter& timeouts_;
  observe::Counter& fallbacks_;
  observe::Counter& quarantined_;
  observe::Counter& quarantineHits_;
};

} // namespace motune::tuning
