#include "tuning/evaluator.h"

#include "observe/trace.h"
#include "runtime/parallel_for.h"
#include "support/check.h"

#include <chrono>

namespace motune::tuning {

namespace {

std::uint64_t nextEvaluatorId() {
  static std::atomic<std::uint64_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// Per-thread front cache (one per thread, handed between evaluator
/// instances via the owner id). Bounded by the number of unique
/// configurations the owning evaluator has seen — the same bound as the
/// shared memo itself.
struct LocalCache {
  std::uint64_t owner = 0; ///< id_ of the evaluator the contents belong to
  std::uint64_t epoch = 0; ///< epoch_ value the contents were filled under
  std::unordered_map<Config, Objectives, ConfigHash> map;
};

LocalCache& localCache() {
  static thread_local LocalCache cache;
  return cache;
}

} // namespace

CountingEvaluator::CountingEvaluator(ObjectiveFunction& inner)
    : inner_(inner), id_(nextEvaluatorId()),
      uniqueCounter_(observe::MetricsRegistry::global().counter(
          "tuning.evaluations.unique")),
      memoHitCounter_(observe::MetricsRegistry::global().counter(
          "tuning.evaluations.memo_hits")),
      latency_(observe::MetricsRegistry::global().histogram(
          "tuning.evaluation.seconds")) {}

Objectives CountingEvaluator::evaluate(const Config& config) {
  // Front cache: repeat lookups complete without acquiring any lock or
  // writing any shared cache line (both counters below are striped), which
  // is what lets parallel batch evaluation scale past one core.
  LocalCache& local = localCache();
  const std::uint64_t epoch = epoch_.load(std::memory_order_acquire);
  if (local.owner != id_ || local.epoch != epoch) {
    local.owner = id_;
    local.epoch = epoch;
    local.map.clear();
  }
  if (auto cached = local.map.find(config); cached != local.map.end()) {
    hits_.add();
    memoHitCounter_.add();
    return cached->second;
  }

  Shard& shard = shards_[ConfigHash{}(config) & (kShards - 1)];
  for (;;) {
    std::shared_ptr<Slot> slot;
    {
      std::unique_lock lock(shard.mutex);
      auto it = shard.memo.find(config);
      if (it == shard.memo.end()) {
        slot = std::make_shared<Slot>();
        shard.memo.emplace(config, slot);
      } else {
        slot = it->second;
        // Single-flight: a concurrent evaluation of this exact config is
        // in progress — wait for its result instead of evaluating twice.
        shard.ready.wait(lock,
                         [&] { return slot->state != Slot::State::Pending; });
        if (slot->state == Slot::State::Ready) {
          hits_.add();
          memoHitCounter_.add();
          // Don't populate the front cache across a concurrent reset():
          // the value belongs to the epoch it was computed under.
          if (epoch_.load(std::memory_order_relaxed) == local.epoch)
            local.map.emplace(config, slot->value);
          return slot->value;
        }
        continue; // leader failed; retry and elect a new leader
      }
    }

    // This thread is the leader for `config`: evaluate outside any lock.
    const auto begin = std::chrono::steady_clock::now();
    Objectives obj;
    try {
      obj = inner_.evaluate(config);
    } catch (...) {
      std::lock_guard lock(shard.mutex);
      slot->state = Slot::State::Failed;
      shard.memo.erase(config);
      shard.ready.notify_all();
      throw;
    }
    latency_.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
            .count());
    bool current;
    {
      std::lock_guard lock(shard.mutex);
      slot->value = std::move(obj);
      slot->state = Slot::State::Ready;
      // A reset() that raced this evaluation has already dropped the slot
      // from the memo (and zeroed the counters). The computed value is
      // still returned to the caller, but it belongs to the pre-reset
      // epoch: counting it or journaling it would double-book the config
      // once the post-reset world evaluates it again.
      auto it = shard.memo.find(config);
      current = it != shard.memo.end() && it->second == slot;
      if (current) {
        ++shard.evals;
        uniqueCounter_.add();
      }
      shard.ready.notify_all();
      if (epoch_.load(std::memory_order_relaxed) == local.epoch)
        local.map.emplace(config, slot->value);
    }
    // Journal the unique evaluation outside the shard lock; Ready slot
    // values are immutable, so reading slot->value here is race-free.
    if (current && listener_) listener_(config, slot->value);
    return slot->value;
  }
}

bool CountingEvaluator::preload(const Config& config,
                                const Objectives& objectives) {
  Shard& shard = shards_[ConfigHash{}(config) & (kShards - 1)];
  std::lock_guard lock(shard.mutex);
  auto it = shard.memo.find(config);
  if (it != shard.memo.end()) return false;
  auto slot = std::make_shared<Slot>();
  slot->value = objectives;
  slot->state = Slot::State::Ready;
  shard.memo.emplace(config, std::move(slot));
  ++shard.evals;
  uniqueCounter_.add();
  return true;
}

std::uint64_t CountingEvaluator::evaluations() const {
  std::uint64_t sum = 0;
  for (const auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    sum += shard.evals;
  }
  return sum;
}

std::uint64_t CountingEvaluator::memoHits() const { return hits_.value(); }

void CountingEvaluator::reset() {
  // Bump the epoch first: threads racing with the reset re-validate their
  // front cache on the next lookup and drop pre-reset contents.
  epoch_.fetch_add(1, std::memory_order_release);
  for (auto& shard : shards_) {
    std::lock_guard lock(shard.mutex);
    shard.memo.clear();
    shard.evals = 0;
  }
  hits_.reset();
  // A reset marker makes traces self-delimiting: a resumed job's trace
  // shows where each run's tuning.evaluations.* mirrors started over.
  observe::Tracer& tracer = observe::Tracer::global();
  if (tracer.enabled())
    tracer.event("evaluator.reset",
                 {{"unique", support::Json(uniqueCounter_.value())},
                  {"memo_hits", support::Json(memoHitCounter_.value())}});
  // Keep the process-wide mirrors in lockstep: without this, the second
  // run of a process reports cumulative tuning.evaluations.* counts.
  uniqueCounter_.reset();
  memoHitCounter_.reset();
}

std::vector<Objectives>
BatchEvaluator::evaluateAll(const std::vector<Config>& configs) {
  std::vector<Objectives> out(configs.size());
  if (!parallel_ || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      out[i] = fn_.evaluate(configs[i]);
    return out;
  }
  runtime::parallelFor(pool_, 0, static_cast<std::int64_t>(configs.size()),
                       static_cast<int>(pool_.workers()),
                       [&](std::int64_t i) {
                         out[static_cast<std::size_t>(i)] =
                             fn_.evaluate(configs[static_cast<std::size_t>(i)]);
                       });
  return out;
}

} // namespace motune::tuning
