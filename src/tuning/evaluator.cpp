#include "tuning/evaluator.h"

#include "runtime/parallel_for.h"
#include "support/check.h"

namespace motune::tuning {

Objectives CountingEvaluator::evaluate(const Config& config) {
  {
    std::lock_guard lock(mutex_);
    auto it = memo_.find(config);
    if (it != memo_.end()) return it->second;
  }
  Objectives obj = inner_.evaluate(config);
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = memo_.emplace(config, std::move(obj));
    if (inserted) ++evals_;
    return it->second;
  }
}

std::uint64_t CountingEvaluator::evaluations() const {
  std::lock_guard lock(mutex_);
  return evals_;
}

void CountingEvaluator::reset() {
  std::lock_guard lock(mutex_);
  memo_.clear();
  evals_ = 0;
}

std::vector<Objectives>
BatchEvaluator::evaluateAll(const std::vector<Config>& configs) {
  std::vector<Objectives> out(configs.size());
  if (!parallel_ || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      out[i] = fn_.evaluate(configs[i]);
    return out;
  }
  runtime::parallelFor(pool_, 0, static_cast<std::int64_t>(configs.size()),
                       static_cast<int>(pool_.workers()),
                       [&](std::int64_t i) {
                         out[static_cast<std::size_t>(i)] =
                             fn_.evaluate(configs[static_cast<std::size_t>(i)]);
                       });
  return out;
}

} // namespace motune::tuning
