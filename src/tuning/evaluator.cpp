#include "tuning/evaluator.h"

#include "runtime/parallel_for.h"
#include "support/check.h"

#include <chrono>

namespace motune::tuning {

CountingEvaluator::CountingEvaluator(ObjectiveFunction& inner)
    : inner_(inner),
      uniqueCounter_(observe::MetricsRegistry::global().counter(
          "tuning.evaluations.unique")),
      memoHitCounter_(observe::MetricsRegistry::global().counter(
          "tuning.evaluations.memo_hits")),
      latency_(observe::MetricsRegistry::global().histogram(
          "tuning.evaluation.seconds")) {}

Objectives CountingEvaluator::evaluate(const Config& config) {
  {
    std::lock_guard lock(mutex_);
    auto it = memo_.find(config);
    if (it != memo_.end()) {
      ++memoHits_;
      memoHitCounter_.add();
      return it->second;
    }
  }
  const auto begin = std::chrono::steady_clock::now();
  Objectives obj = inner_.evaluate(config);
  latency_.observe(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - begin)
          .count());
  {
    std::lock_guard lock(mutex_);
    auto [it, inserted] = memo_.emplace(config, std::move(obj));
    if (inserted) {
      ++evals_;
      uniqueCounter_.add();
    }
    return it->second;
  }
}

std::uint64_t CountingEvaluator::evaluations() const {
  std::lock_guard lock(mutex_);
  return evals_;
}

std::uint64_t CountingEvaluator::memoHits() const {
  std::lock_guard lock(mutex_);
  return memoHits_;
}

void CountingEvaluator::reset() {
  std::lock_guard lock(mutex_);
  memo_.clear();
  evals_ = 0;
  memoHits_ = 0;
}

std::vector<Objectives>
BatchEvaluator::evaluateAll(const std::vector<Config>& configs) {
  std::vector<Objectives> out(configs.size());
  if (!parallel_ || configs.size() <= 1) {
    for (std::size_t i = 0; i < configs.size(); ++i)
      out[i] = fn_.evaluate(configs[i]);
    return out;
  }
  runtime::parallelFor(pool_, 0, static_cast<std::int64_t>(configs.size()),
                       static_cast<int>(pool_.workers()),
                       [&](std::int64_t i) {
                         out[static_cast<std::size_t>(i)] =
                             fn_.evaluate(configs[static_cast<std::size_t>(i)]);
                       });
  return out;
}

} // namespace motune::tuning
