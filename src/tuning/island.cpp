#include "tuning/island.h"

#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <thread>

namespace motune::tuning {

namespace {

support::Json migrantHeaderRecord(int island, int islands, int migrateEvery,
                                  std::size_t migrants, std::uint64_t seed) {
  return support::JsonObject{{"type", "header"},
                             {"format", "motune-island-migrants"},
                             {"version", 1},
                             {"island", island},
                             {"islands", islands},
                             {"migrate_every", migrateEvery},
                             {"migrants", migrants},
                             {"seed", seed}};
}

support::Json migrantsRecord(int island, int round, int generation,
                             const std::vector<opt::Individual>& emigrants) {
  support::JsonArray individuals;
  for (const opt::Individual& ind : emigrants)
    individuals.push_back(opt::individualToJson(ind));
  return support::JsonObject{{"type", "migrants"},
                             {"island", island},
                             {"round", round},
                             {"generation", generation},
                             {"individuals", std::move(individuals)}};
}

support::Json retireRecord(int island, int round, int generation,
                           std::uint64_t evaluations) {
  return support::JsonObject{{"type", "retire"},
                             {"island", island},
                             {"round", round},
                             {"generation", generation},
                             {"evaluations", evaluations}};
}

observe::Counter& counter(const char* name) {
  return observe::MetricsRegistry::global().counter(name);
}

} // namespace

std::string islandDirectory(const std::string& directory, int island) {
  return directory + "/island-" + std::to_string(island);
}

std::string migrantJournalPath(const std::string& directory, int island) {
  return islandDirectory(directory, island) + "/migrants.jsonl";
}

// ---------------------------------------------------------------------------
// MemoryExchange

bool MemoryExchange::publish(int island, int round, int /*generation*/,
                             const std::vector<opt::Individual>& emigrants) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!records_.emplace(std::make_pair(island, round), emigrants).second)
      return false;
  }
  arrived_.notify_all();
  return true;
}

std::vector<opt::Individual>
MemoryExchange::fetch(int from, int round,
                      const std::function<bool()>& stop) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = records_.find(std::make_pair(from, round));
    if (it != records_.end()) return it->second;
    const auto retired = retired_.find(from);
    if (retired != retired_.end() && retired->second < round) return {};
    if (stop && stop()) return {};
    arrived_.wait_for(lock, std::chrono::milliseconds(50));
  }
}

void MemoryExchange::retire(int island, int round, int /*generation*/,
                            std::uint64_t /*evaluations*/) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    retired_[island] = round;
  }
  arrived_.notify_all();
}

// ---------------------------------------------------------------------------
// JournalExchange

JournalExchange::JournalExchange(std::string directory, int islands,
                                 int migrateEvery, std::size_t migrants,
                                 std::uint64_t seed)
    : directory_(std::move(directory)),
      islands_(islands),
      migrateEvery_(migrateEvery),
      migrants_(migrants),
      seed_(seed) {
  MOTUNE_CHECK(!directory_.empty());
}

void JournalExchange::attach(int island, bool resume) {
  std::lock_guard<std::mutex> lock(mutex_);
  MOTUNE_CHECK_MSG(attached_.find(island) == attached_.end(),
                   "island attached twice");
  const std::string path = migrantJournalPath(directory_, island);
  Attached state;
  // A kill between session creation and the first migrant write leaves a
  // session journal but no migrant journal; the resumed island then starts
  // its migrant journal fresh.
  if (resume && !std::filesystem::exists(path)) resume = false;
  if (resume) {
    // Re-scan what the killed run already published: those rounds are
    // visible to peers and must not be appended again (exactly-once), and
    // JournalWriter's append mode trims any torn tail before we write.
    const std::vector<support::Json> records = session::readJournal(path);
    MOTUNE_CHECK_MSG(!records.empty(), "empty migrant journal: " + path);
    const support::Json& header = records.front();
    MOTUNE_CHECK_MSG(header.at("type").asString() == "header" &&
                         header.at("format").asString() ==
                             "motune-island-migrants",
                     "not a migrant journal: " + path);
    MOTUNE_CHECK_MSG(header.at("version").asInt() == 1,
                     "unsupported migrant journal version: " + path);
    MOTUNE_CHECK_MSG(
        header.at("islands").asInt() == islands_ &&
            header.at("migrate_every").asInt() == migrateEvery_ &&
            static_cast<std::size_t>(header.at("migrants").asInt()) ==
                migrants_ &&
            static_cast<std::uint64_t>(header.at("seed").asInt()) == seed_,
        "migrant journal belongs to a different island run: " + path);
    for (const support::Json& r : records) {
      const std::string type = r.at("type").asString();
      if (type == "migrants")
        state.publishedRounds.insert(static_cast<int>(r.at("round").asInt()));
      else if (type == "retire")
        state.retired = true;
    }
    state.writer = std::make_unique<session::JournalWriter>(
        path, session::JournalWriter::Mode::Append);
  } else {
    state.writer = std::make_unique<session::JournalWriter>(
        path, session::JournalWriter::Mode::Truncate);
    state.writer->write(
        migrantHeaderRecord(island, islands_, migrateEvery_, migrants_,
                            seed_));
  }
  attached_.emplace(island, std::move(state));
}

bool JournalExchange::publish(int island, int round, int generation,
                              const std::vector<opt::Individual>& emigrants) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = attached_.find(island);
  MOTUNE_CHECK_MSG(it != attached_.end(), "publish from unattached island");
  if (!it->second.publishedRounds.insert(round).second) return false;
  it->second.writer->write(migrantsRecord(island, round, generation,
                                          emigrants));
  return true;
}

std::optional<std::vector<opt::Individual>>
JournalExchange::tryFetch(int from, int round) {
  const std::string path = migrantJournalPath(directory_, from);
  // A journal that does not exist yet (the peer process is still starting
  // up) is indistinguishable from lagging; mid-file corruption inside an
  // existing journal stays a hard error (readJournal throws).
  if (!std::filesystem::exists(path)) return std::nullopt;
  const std::vector<support::Json> records = session::readJournal(path);
  for (const support::Json& r : records) {
    if (!r.has("type")) continue;
    const std::string type = r.at("type").asString();
    if (type == "migrants" && r.at("round").asInt() == round) {
      std::vector<opt::Individual> out;
      for (const support::Json& ind : r.at("individuals").asArray())
        out.push_back(opt::individualFromJson(ind));
      return out;
    }
    if (type == "retire" && r.at("round").asInt() < round)
      return std::vector<opt::Individual>{};
  }
  return std::nullopt;
}

std::vector<opt::Individual>
JournalExchange::fetch(int from, int round,
                       const std::function<bool()>& stop) {
  for (;;) {
    if (std::optional<std::vector<opt::Individual>> got =
            tryFetch(from, round))
      return *got;
    counter("tuning.island.stale_reads").add();
    if (stop && stop()) return {};
    std::this_thread::sleep_for(std::chrono::milliseconds(pollMs_));
  }
}

void JournalExchange::retire(int island, int round, int generation,
                             std::uint64_t evaluations) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = attached_.find(island);
  MOTUNE_CHECK_MSG(it != attached_.end(), "retire from unattached island");
  if (it->second.retired) return; // resumed island that had already finished
  it->second.writer->write(retireRecord(island, round, generation,
                                        evaluations));
  it->second.retired = true;
}

// ---------------------------------------------------------------------------
// runIslands

namespace {

/// Outcome of one island's run (or reconstruction).
struct IslandOutcome {
  opt::OptResult result;
  std::string journal;
  std::uint64_t checkpoints = 0;
  int resumes = 0;
  std::uint64_t recordedEvaluations = 0;
};

/// Engine options of island k: shifted RNG seed, rotated analytic seeds.
opt::RSGDE3Options islandEngineOptions(const IslandOptions& options, int k) {
  opt::RSGDE3Options rs;
  rs.gde3 = options.gde3;
  rs.reductionEnabled = options.reduction;
  rs.gde3.seed = options.gde3.seed + static_cast<std::uint64_t>(k);
  rs.gde3.initialSeeds.clear();
  const std::size_t n = options.seeds.size();
  for (std::size_t i = 0; i < n; ++i)
    rs.gde3.initialSeeds.push_back(
        options.seeds[(i + static_cast<std::size_t>(k)) % n]);
  return rs;
}

/// Runs (or, when its session already finished, reconstructs) island k.
IslandOutcome runOneIsland(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                           const IslandOptions& options, int k,
                           MigrantExchange& exchange) {
  observe::Span span = observe::Tracer::global().span(
      "island.run", {{"island", support::Json(k)},
                     {"islands", support::Json(options.islands)}});
  IslandOutcome out;
  opt::RSGDE3 engine(fn, pool, islandEngineOptions(options, k));

  const bool useSession = !options.directory.empty();
  const std::string dir =
      useSession ? islandDirectory(options.directory, k) : std::string();
  std::optional<session::ResumeState> resumed;
  std::unique_ptr<session::SessionWriter> writer;
  session::SessionHeader header;
  if (useSession) {
    MOTUNE_CHECK_MSG(options.makeHeader != nullptr,
                     "island sessions need a header factory");
    header = options.makeHeader(k, options.gde3.seed +
                                       static_cast<std::uint64_t>(k));
    const bool resume = options.resume && session::sessionExists(dir);
    if (resume) {
      resumed = session::loadSession(dir);
      session::checkCompatible(resumed->header, header);
      for (const session::EvalRecord& e : resumed->evaluations)
        engine.engine().evaluator().preload(e.config, e.objectives);
      if (resumed->finished) {
        // The island already ran to completion: rebuild its snapshot from
        // the final checkpoint plus the preloaded evaluations — this is
        // how a later invocation merges finished worker islands without
        // re-running anything.
        MOTUNE_CHECK_MSG(resumed->checkpoint.has_value(),
                         "finished island session has no checkpoint: " + dir);
        engine.restore(*resumed->checkpoint);
        out.result = engine.engine().snapshot();
        out.journal = session::journalPath(dir);
        out.checkpoints = resumed->checkpoints;
        out.resumes = resumed->resumes;
        out.recordedEvaluations = resumed->evaluations.size();
        span.setAttr("reconstructed", support::Json(true));
        return out;
      }
      writer = std::make_unique<session::SessionWriter>(dir, *resumed);
    } else {
      writer = std::make_unique<session::SessionWriter>(dir, header);
    }
    dynamic_cast<JournalExchange&>(exchange).attach(k, resume);
    engine.engine().evaluator().setListener(
        [&writer](const Config& config, const Objectives& objectives) {
          writer->recordEvaluation(config, objectives);
        });
  }

  opt::RunHooks hooks;
  hooks.shouldStop = options.stopRequested;
  if (k == 0) hooks.onGeneration = options.onProgress;
  if (writer) {
    hooks.checkpointEvery = options.checkpointEvery;
    hooks.checkpoint = [&writer, &engine](const support::Json& state,
                                          int generation) {
      writer->recordCheckpoint(state, generation,
                               engine.engine().evaluations());
    };
  }
  if (resumed.has_value() && resumed->checkpoint.has_value())
    hooks.resumeState = &*resumed->checkpoint;
  if (options.islands > 1) {
    hooks.migrateEvery = options.migrateEvery;
    hooks.onMigrate = [&](opt::GDE3& gde3, int generation) {
      const int round = generation / options.migrateEvery;
      const std::vector<opt::Individual> outbound =
          gde3.selectTop(options.migrants);
      if (exchange.publish(k, round, generation, outbound))
        counter("tuning.island.migrants_out").add(outbound.size());
      const int from = (k - 1 + options.islands) % options.islands;
      const std::vector<opt::Individual> inbound =
          exchange.fetch(from, round, options.stopRequested);
      counter("tuning.island.migrants_in")
          .add(gde3.integrateMigrants(inbound));
    };
  }

  out.result = engine.run(&hooks);
  const bool cancelled =
      options.stopRequested != nullptr && options.stopRequested();
  if (!cancelled) {
    if (options.islands > 1)
      exchange.retire(k, out.result.generations / options.migrateEvery,
                      out.result.generations, out.result.evaluations);
    if (writer)
      writer->recordFinish(out.result.evaluations, out.result.front.size(),
                           out.result.hvHistory.empty()
                               ? 0.0
                               : out.result.hvHistory.back());
  }
  if (writer) {
    out.journal = writer->path();
    out.checkpoints = (resumed ? resumed->checkpoints : 0) +
                      writer->checkpointsWritten();
    out.resumes = resumed ? resumed->resumes + 1 : 0;
    out.recordedEvaluations = (resumed ? resumed->evaluations.size() : 0) +
                              writer->evaluationsRecorded();
  }
  span.setAttr("generations", support::Json(out.result.generations));
  span.setAttr("evaluations", support::Json(out.result.evaluations));
  return out;
}

/// Deterministic merge of the islands' snapshots (see IslandOptions).
opt::OptResult mergeOutcomes(const std::vector<IslandOutcome>& outcomes) {
  opt::OptResult merged;
  std::vector<opt::Individual> fronts;
  for (const IslandOutcome& o : outcomes) {
    fronts.insert(fronts.end(), o.result.front.begin(), o.result.front.end());
    merged.population.insert(merged.population.end(),
                             o.result.population.begin(),
                             o.result.population.end());
    merged.evaluations += o.result.evaluations;
    merged.generations = std::max(merged.generations, o.result.generations);
  }
  merged.front = opt::paretoFront(fronts);
  if (!outcomes.empty()) merged.hvHistory = outcomes.front().result.hvHistory;
  return merged;
}

} // namespace

IslandRun runIslands(ObjectiveFunction& fn, runtime::ThreadPool& pool,
                     const IslandOptions& options) {
  MOTUNE_CHECK_MSG(options.islands >= 1, "--islands must be >= 1");
  MOTUNE_CHECK_MSG(options.migrateEvery >= 1,
                   "--migrate-every must be >= 1");
  MOTUNE_CHECK_MSG(options.migrants >= 1, "--migrants must be >= 1");
  MOTUNE_CHECK_MSG(options.islandIndex < options.islands,
                   "--island-index out of range");
  MOTUNE_CHECK_MSG(options.islandIndex < 0 || !options.directory.empty(),
                   "--island-index (worker mode) requires --checkpoint: "
                   "workers exchange migrants through the shared directory");
  MOTUNE_CHECK_MSG(options.gde3.surrogate == nullptr,
                   "islands and surrogate culling are mutually exclusive");
  observe::Span span = observe::Tracer::global().span(
      "island.model", {{"islands", support::Json(options.islands)},
                       {"migrate_every", support::Json(options.migrateEvery)},
                       {"worker", support::Json(options.islandIndex >= 0)}});

  std::unique_ptr<MigrantExchange> exchange;
  if (options.directory.empty())
    exchange = std::make_unique<MemoryExchange>();
  else
    exchange = std::make_unique<JournalExchange>(
        options.directory, options.islands, options.migrateEvery,
        options.migrants, options.gde3.seed);

  IslandRun run;
  std::vector<IslandOutcome> outcomes;
  if (options.islandIndex >= 0) {
    // Worker mode: run exactly one island; the merged result is this
    // island's own snapshot (provisional — a later merge invocation over
    // the shared directory produces the combined front).
    outcomes.push_back(runOneIsland(fn, pool, options, options.islandIndex,
                                    *exchange));
  } else {
    // A failing island must unblock peers waiting on its records, so the
    // per-island stop predicate also observes the shared failure flag.
    std::atomic<bool> failed{false};
    IslandOptions local = options;
    const std::function<bool()> baseStop = options.stopRequested;
    local.stopRequested = [baseStop, &failed] {
      return failed.load() || (baseStop && baseStop());
    };
    outcomes.resize(static_cast<std::size_t>(options.islands));
    std::vector<std::thread> threads;
    std::mutex errorMutex;
    std::exception_ptr error;
    for (int k = 0; k < options.islands; ++k) {
      threads.emplace_back([&, k] {
        try {
          outcomes[static_cast<std::size_t>(k)] =
              runOneIsland(fn, pool, local, k, *exchange);
        } catch (...) {
          failed.store(true);
          std::lock_guard<std::mutex> lock(errorMutex);
          if (!error) error = std::current_exception();
        }
      });
    }
    for (std::thread& t : threads) t.join();
    if (error) std::rethrow_exception(error);
  }

  run.merged = mergeOutcomes(outcomes);
  run.cancelled =
      options.stopRequested != nullptr && options.stopRequested();
  for (const IslandOutcome& o : outcomes) {
    run.checkpoints += o.checkpoints;
    run.resumes += o.resumes;
    run.recordedEvaluations += o.recordedEvaluations;
  }
  if (!outcomes.empty()) run.journal = outcomes.front().journal;
  span.setAttr("evaluations", support::Json(run.merged.evaluations));
  span.setAttr("front_size", support::Json(run.merged.front.size()));
  return run;
}

} // namespace motune::tuning
