#include "tuning/native_evaluator.h"

#include "support/check.h"
#include "support/stats.h"

#include <algorithm>
#include <chrono>

namespace motune::tuning {

namespace {
double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
} // namespace

NativeKernelEvaluator::NativeKernelEvaluator(const kernels::KernelSpec& kernel,
                                             std::int64_t n, int maxThreads,
                                             runtime::ThreadPool& pool,
                                             int repetitions)
    : kernel_(kernel), n_(n), repetitions_(repetitions), pool_(pool) {
  MOTUNE_CHECK(n >= 2);
  MOTUNE_CHECK(repetitions >= 1);

  const char* tileNames[] = {"t_i", "t_j", "t_k"};
  for (std::size_t d = 0; d < kernel_.tileDims; ++d)
    space_.push_back({tileNames[d], 1, std::max<std::int64_t>(1, n_ / 2)});
  space_.push_back({"threads", 1, maxThreads});

  const auto sz = static_cast<std::size_t>(n_ * n_);
  if (kernel_.name == "mm") {
    a_.resize(sz);
    b_.resize(sz);
    c_.resize(sz);
    kernels::fillDeterministic(a_, 1);
    kernels::fillDeterministic(b_, 2);
  } else if (kernel_.name == "dsyrk") {
    a_.resize(sz);
    c_.resize(sz);
    kernels::fillDeterministic(a_, 1);
  } else if (kernel_.name == "jacobi-2d") {
    a_.resize(sz);
    b_.resize(sz);
    kernels::fillDeterministic(a_, 1);
  } else if (kernel_.name == "3d-stencil") {
    const auto sz3 = static_cast<std::size_t>(n_ * n_ * n_);
    a_.resize(sz3);
    b_.resize(sz3);
    kernels::fillDeterministic(a_, 1);
  } else if (kernel_.name == "n-body") {
    bodies_ = std::make_unique<kernels::Bodies>(static_cast<std::size_t>(n_));
    kernels::fillDeterministic(bodies_->x, 1);
    kernels::fillDeterministic(bodies_->y, 2);
    kernels::fillDeterministic(bodies_->z, 3);
  } else {
    MOTUNE_CHECK_MSG(false, "unknown kernel: " + kernel_.name);
  }
}

double NativeKernelEvaluator::runOnce(const Config& config) {
  const auto threads = static_cast<int>(config.back());
  const double start = nowSeconds();
  if (kernel_.name == "mm") {
    std::fill(c_.begin(), c_.end(), 0.0);
    kernels::mmTiled(a_.data(), b_.data(), c_.data(), n_,
                     {config[0], config[1], config[2]}, threads, pool_);
  } else if (kernel_.name == "dsyrk") {
    std::fill(c_.begin(), c_.end(), 0.0);
    kernels::dsyrkTiled(a_.data(), c_.data(), n_,
                        {config[0], config[1], config[2]}, threads, pool_);
  } else if (kernel_.name == "jacobi-2d") {
    kernels::jacobi2dTiled(a_.data(), b_.data(), n_, {config[0], config[1]},
                           threads, pool_);
  } else if (kernel_.name == "3d-stencil") {
    kernels::stencil3dTiled(a_.data(), b_.data(), n_,
                            {config[0], config[1], config[2]}, threads,
                            pool_);
  } else { // n-body
    std::fill(bodies_->fx.begin(), bodies_->fx.end(), 0.0);
    std::fill(bodies_->fy.begin(), bodies_->fy.end(), 0.0);
    std::fill(bodies_->fz.begin(), bodies_->fz.end(), 0.0);
    kernels::nbodyTiled(*bodies_, {config[0], config[1]}, threads, pool_);
  }
  return nowSeconds() - start;
}

Objectives NativeKernelEvaluator::evaluate(const Config& config) {
  MOTUNE_CHECK(config.size() == space_.size());
  std::lock_guard lock(runMutex_);
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(repetitions_));
  for (int r = 0; r < repetitions_; ++r) times.push_back(runOnce(config));
  const double med = support::median(times);
  return {med, static_cast<double>(config.back()) * med};
}

} // namespace motune::tuning
