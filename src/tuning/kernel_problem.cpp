#include "tuning/kernel_problem.h"

#include "support/check.h"

#include <sstream>

namespace motune::tuning {

namespace {
constexpr std::size_t kMaxCachedVariants = 200000;

std::string tileKey(const Config& config, std::size_t tileDims) {
  std::ostringstream os;
  for (std::size_t i = 0; i < tileDims; ++i) os << config[i] << ",";
  return os.str();
}
} // namespace

KernelTuningProblem::KernelTuningProblem(const kernels::KernelSpec& kernel,
                                         machine::MachineModel machine,
                                         std::int64_t n,
                                         perf::CostParams params,
                                         std::vector<Objective> objectives)
    : kernel_(kernel),
      n_(n > 0 ? n : kernel.paperN),
      skeleton_(analyzer::TransformationSkeleton::build(kernel.buildIR(n_),
                                                        machine.totalCores())),
      model_(std::move(machine), params),
      space_(skeleton_.params()),
      objectives_(std::move(objectives)) {
  MOTUNE_CHECK(skeleton_.tileDepth() == kernel_.tileDims);
  MOTUNE_CHECK(!objectives_.empty());
}

const KernelTuningProblem::Variant&
KernelTuningProblem::variantFor(const Config& config) {
  const std::string key = tileKey(config, skeleton_.tileDepth());
  {
    std::lock_guard lock(cacheMutex_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return *it->second;
  }
  auto variant = std::make_unique<Variant>();
  variant->program = skeleton_.instantiate(config);
  variant->analysis = perf::analyzeNest(variant->program);
  {
    std::lock_guard lock(cacheMutex_);
    if (cache_.size() >= kMaxCachedVariants) cache_.clear();
    auto [it, inserted] = cache_.emplace(key, std::move(variant));
    (void)inserted; // losing a race keeps the first entry; both are equal
    return *it->second;
  }
}

Objectives KernelTuningProblem::evaluate(const Config& config) {
  const perf::Prediction p = predictFull(config);
  Objectives out;
  out.reserve(objectives_.size());
  for (const Objective obj : objectives_) {
    switch (obj) {
    case Objective::Time: out.push_back(p.seconds); break;
    case Objective::Resources: out.push_back(p.resources); break;
    case Objective::Energy: out.push_back(p.joules); break;
    }
  }
  return out;
}

perf::Prediction KernelTuningProblem::predictFull(const Config& config) {
  MOTUNE_CHECK(config.size() == space_.size());
  const auto threads = static_cast<int>(config.back());
  const Variant& variant = variantFor(config);
  return model_.predictAnalyzed(variant.analysis, threads);
}

double KernelTuningProblem::untiledSerialSeconds() const {
  return untiledSerialPrediction().seconds;
}

perf::Prediction KernelTuningProblem::untiledSerialPrediction() const {
  const ir::Program base = kernel_.buildIR(n_);
  return model_.predict(base, 1);
}

ir::Program KernelTuningProblem::instantiate(const Config& config) const {
  return skeleton_.instantiate(config);
}

} // namespace motune::tuning
