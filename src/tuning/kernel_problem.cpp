#include "tuning/kernel_problem.h"

#include "support/check.h"

#include <algorithm>

namespace motune::tuning {

namespace {
constexpr std::size_t kMaxCachedVariants = 200000;

bool tilesMatch(const std::vector<std::int64_t>& tiles, const Config& config,
                std::size_t tileDims) {
  if (tiles.size() != tileDims) return false;
  return std::equal(tiles.begin(), tiles.end(), config.begin());
}
} // namespace

KernelTuningProblem::KernelTuningProblem(const kernels::KernelSpec& kernel,
                                         machine::MachineModel machine,
                                         std::int64_t n,
                                         perf::CostParams params,
                                         std::vector<Objective> objectives)
    : kernel_(kernel),
      n_(n > 0 ? n : kernel.paperN),
      skeleton_(analyzer::TransformationSkeleton::build(kernel.buildIR(n_),
                                                        machine.totalCores())),
      model_(std::move(machine), params),
      space_(skeleton_.params()),
      objectives_(std::move(objectives)),
      cacheCapacity_(kMaxCachedVariants) {
  MOTUNE_CHECK(skeleton_.tileDepth() == kernel_.tileDims);
  MOTUNE_CHECK(!objectives_.empty());
}

std::shared_ptr<const KernelTuningProblem::Variant>
KernelTuningProblem::lookupLocked(std::uint64_t key, const Config& config,
                                  std::size_t tileDims) {
  auto it = slotIndex_.find(key);
  if (it == slotIndex_.end()) return nullptr;
  CacheSlot& slot = slots_[it->second];
  // A 64-bit hash collision between distinct tile vectors is astronomically
  // unlikely; when it happens the colliding insert simply replaces the
  // resident entry, so correctness never rests on hash uniqueness.
  if (!tilesMatch(slot.tiles, config, tileDims)) return nullptr;
  slot.referenced = true;
  return slot.variant;
}

void KernelTuningProblem::insertLocked(
    std::uint64_t key, const Config& config, std::size_t tileDims,
    const std::shared_ptr<const Variant>& variant) {
  if (auto it = slotIndex_.find(key); it != slotIndex_.end()) {
    // Hash collision with different tiles: replace in place.
    CacheSlot& slot = slots_[it->second];
    slot.tiles.assign(config.begin(), config.begin() + tileDims);
    slot.variant = variant;
    slot.referenced = true;
    return;
  }

  std::size_t idx;
  if (slots_.size() < cacheCapacity_) {
    idx = slots_.size();
    slots_.emplace_back();
  } else {
    // CLOCK second chance: sweep the hand, downgrading referenced slots,
    // and evict the first unreferenced one. Terminates within two sweeps.
    while (slots_[clockHand_].referenced) {
      slots_[clockHand_].referenced = false;
      clockHand_ = (clockHand_ + 1) % slots_.size();
    }
    idx = clockHand_;
    slotIndex_.erase(slots_[idx].key);
    ++evictions_;
    clockHand_ = (clockHand_ + 1) % slots_.size();
  }
  CacheSlot& slot = slots_[idx];
  slot.key = key;
  slot.tiles.assign(config.begin(), config.begin() + tileDims);
  slot.variant = variant;
  slot.referenced = true;
  slotIndex_.emplace(key, static_cast<std::uint32_t>(idx));
}

std::shared_ptr<const KernelTuningProblem::Variant>
KernelTuningProblem::variantFor(const Config& config) {
  const std::size_t tileDims = skeleton_.tileDepth();
  const std::uint64_t key = ConfigHash::hashPrefix(config, tileDims);
  {
    std::lock_guard lock(cacheMutex_);
    if (auto hit = lookupLocked(key, config, tileDims)) return hit;
  }
  auto variant = std::make_shared<Variant>();
  variant->program = skeleton_.instantiate(config);
  variant->analysis = perf::analyzeNest(variant->program);
  std::lock_guard lock(cacheMutex_);
  // Losing a build race keeps the first entry; both are equal.
  if (auto hit = lookupLocked(key, config, tileDims)) return hit;
  insertLocked(key, config, tileDims, variant);
  return variant;
}

void KernelTuningProblem::setVariantCacheCapacity(std::size_t capacity) {
  MOTUNE_CHECK(capacity >= 1);
  std::lock_guard lock(cacheMutex_);
  cacheCapacity_ = capacity;
  slots_.clear();
  slotIndex_.clear();
  clockHand_ = 0;
}

std::size_t KernelTuningProblem::variantCacheSize() const {
  std::lock_guard lock(cacheMutex_);
  return slots_.size();
}

bool KernelTuningProblem::variantCached(const Config& config) const {
  const std::size_t tileDims = skeleton_.tileDepth();
  const std::uint64_t key = ConfigHash::hashPrefix(config, tileDims);
  std::lock_guard lock(cacheMutex_);
  auto it = slotIndex_.find(key);
  return it != slotIndex_.end() &&
         tilesMatch(slots_[it->second].tiles, config, tileDims);
}

std::uint64_t KernelTuningProblem::variantEvictions() const {
  std::lock_guard lock(cacheMutex_);
  return evictions_;
}

Objectives KernelTuningProblem::evaluate(const Config& config) {
  const perf::Prediction p = predictFull(config);
  Objectives out;
  out.reserve(objectives_.size());
  for (const Objective obj : objectives_) {
    switch (obj) {
    case Objective::Time: out.push_back(p.seconds); break;
    case Objective::Resources: out.push_back(p.resources); break;
    case Objective::Energy: out.push_back(p.joules); break;
    }
  }
  return out;
}

perf::Prediction KernelTuningProblem::predictFull(const Config& config) {
  MOTUNE_CHECK(config.size() == space_.size());
  const auto threads = static_cast<int>(config.back());
  const std::shared_ptr<const Variant> variant = variantFor(config);
  return model_.predictAnalyzed(variant->analysis, threads);
}

double KernelTuningProblem::untiledSerialSeconds() const {
  return untiledSerialPrediction().seconds;
}

perf::Prediction KernelTuningProblem::untiledSerialPrediction() const {
  const ir::Program base = kernel_.buildIR(n_);
  return model_.predict(base, 1);
}

ir::Program KernelTuningProblem::instantiate(const Config& config) const {
  return skeleton_.instantiate(config);
}

} // namespace motune::tuning
