#include "tuning/validation.h"

#include "cachesim/hierarchy.h"
#include "ir/bytecode.h"
#include "observe/trace.h"
#include "support/check.h"
#include "tuning/kernel_problem.h"

#include <algorithm>
#include <set>

namespace motune::tuning {

std::vector<ValidationSample> validateAgainstCachesim(
    const kernels::KernelSpec& kernel, const machine::MachineModel& machine,
    const std::vector<Config>& configs, const ValidationOptions& options) {
  const std::int64_t n = options.n > 0 ? options.n : kernel.testN;
  MOTUNE_CHECK_MSG(n > 0, "kernel has no miniature problem size");
  observe::Span span = observe::Tracer::global().span(
      "tuning.validation",
      {{"kernel", support::Json(kernel.name)}, {"n", support::Json(n)}});

  // The miniature problem defines the clamped space and the model path.
  KernelTuningProblem problem(kernel, machine, n);
  const auto& space = problem.space();

  std::vector<ValidationSample> samples;
  std::set<Config> seen;
  for (const Config& original : configs) {
    if (samples.size() >= options.maxSamples) break;
    MOTUNE_CHECK(original.size() == space.size());
    // Clamp tiles into the miniature space; pin threads to 1 so the
    // single-threaded simulator slice and the prediction line up.
    Config config(space.size());
    for (std::size_t d = 0; d < space.size(); ++d)
      config[d] = std::clamp(original[d], space[d].lo, space[d].hi);
    config.back() = 1;
    if (!seen.insert(config).second) continue;

    ValidationSample sample;
    sample.config = config;
    sample.n = n;

    const perf::Prediction pred = problem.predictFull(config);
    sample.modelSeconds = pred.seconds;
    sample.modelDramBytes =
        pred.trafficBytes.empty() ? 0.0 : pred.trafficBytes.back();

    // Bytecode execution + batched trace delivery: the simulator consumes
    // flat spans of records instead of one callback per element access.
    ir::CompiledProgram exec(problem.instantiate(config));
    cachesim::Hierarchy hierarchy(machine, 1);
    exec.setBatchTrace([&](std::span<const support::MemAccess> batch) {
      hierarchy.access(batch);
    });
    exec.run();
    sample.simDramBytes = static_cast<double>(hierarchy.dramBytes());
    sample.simSeconds = hierarchy.totalCycles() / (machine.freqGHz * 1e9);
    sample.dramRatio = sample.simDramBytes > 0.0
                           ? sample.modelDramBytes / sample.simDramBytes
                           : 0.0;
    samples.push_back(std::move(sample));
  }
  span.setAttr("samples", support::Json(samples.size()));
  return samples;
}

} // namespace motune::tuning
