// Cross-validation of the analytical cost model against the trace-driven
// cache simulator, per sampled configuration.
//
// The analytical model (perfmodel/) is the reproduction's stand-in for
// running variants on real hardware; the cache simulator (cachesim/) is the
// independent ground truth for memory behavior. This module replays tuned
// configurations at the kernel's miniature size (interpreter-tractable),
// simulates their memory trace, and reports predicted-vs-simulated DRAM
// traffic and time — the data behind `motune report`'s "cost model vs.
// cache simulator" section and the `--validate` tuning flag.
#pragma once

#include "kernels/kernel.h"
#include "machine/machine.h"
#include "tuning/search_space.h"

#include <vector>

namespace motune::tuning {

struct ValidationOptions {
  std::size_t maxSamples = 8; ///< cap: simulation is trace-granular (slow)
  std::int64_t n = 0;         ///< validation problem size; 0 = kernel testN
};

/// One configuration's model-vs-simulator comparison (threads fixed at 1:
/// the simulator models one thread's private hierarchy slice).
struct ValidationSample {
  Config config;        ///< clamped to the validation-size search space
  std::int64_t n = 0;   ///< problem size the comparison ran at
  double modelDramBytes = 0.0;
  double simDramBytes = 0.0;
  double dramRatio = 0.0; ///< model / simulated (1.0 = perfect agreement)
  double modelSeconds = 0.0;
  double simSeconds = 0.0; ///< simulated access cycles / core frequency
};

/// Replays `configs` (typically a Pareto front) at the miniature problem
/// size and compares the analytical prediction with the cache simulator.
/// Tile sizes are clamped into the miniature space; duplicate clamped
/// configurations are validated once. Deterministic.
std::vector<ValidationSample> validateAgainstCachesim(
    const kernels::KernelSpec& kernel, const machine::MachineModel& machine,
    const std::vector<Config>& configs, const ValidationOptions& options = {});

} // namespace motune::tuning
