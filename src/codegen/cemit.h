// C back end: turns IR programs into compilable C functions and emits the
// multi-versioned region modules of the paper's backend (Fig. 3 label 5,
// Fig. 6): one specialized function per Pareto-optimal configuration plus a
// statically initialized version table carrying the trade-off metadata the
// runtime system consults.
#pragma once

#include "ir/program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace motune::codegen {

/// Emits a self-contained C function `void <fnName>(double* A, ...)` with
/// one pointer parameter per array (row-major, cast to the declared shape
/// inside). Parallel loops carry OpenMP pragmas.
std::string emitFunction(const ir::Program& program, const std::string& fnName,
                         bool emitPragmas = true);

/// Metadata attached to one generated code version (paper Fig. 6: each
/// entry describes the trade-off the version represents).
struct VersionDescriptor {
  ir::Program program;
  std::vector<std::int64_t> tileSizes;
  int threads = 1;
  double estTimeSeconds = 0.0;
  double estResources = 0.0; ///< threads x time, the second objective
};

/// Emits a full multi-versioned C module for one region: all version
/// functions, a `motune_<region>_version_t` metadata struct, the statically
/// initialized version table and a count symbol. The runtime (or any
/// third-party scheduler) selects a version by scanning the table.
std::string emitMultiVersionModule(const std::string& regionName,
                                   const std::vector<VersionDescriptor>& versions);

} // namespace motune::codegen
