#include "autotune/artifact.h"

#include "support/check.h"

#include <fstream>
#include <sstream>

namespace motune::autotune {

TunedArtifact makeArtifact(const TuningResult& result,
                           const tuning::KernelTuningProblem& problem) {
  TunedArtifact a;
  a.kernel = problem.kernel().name;
  a.machineName = problem.machine().name;
  a.problemSize = problem.problemSize();
  a.evaluations = result.evaluations;
  a.hypervolume = result.hypervolume;
  a.untiledSerialSeconds = result.timeRef;
  a.front = result.front;
  a.session = result.session;
  return a;
}

namespace {

support::Json metaToJson(const mv::VersionMeta& m) {
  support::JsonArray config, tiles;
  for (auto v : m.configuration) config.emplace_back(v);
  for (auto v : m.tileSizes) tiles.emplace_back(v);
  return support::JsonObject{
      {"config", std::move(config)},   {"tiles", std::move(tiles)},
      {"threads", m.threads},          {"time_s", m.timeSeconds},
      {"resources", m.resources},      {"joules", m.joules},
  };
}

mv::VersionMeta metaFromJson(const support::Json& j) {
  mv::VersionMeta m;
  for (const auto& v : j.at("config").asArray())
    m.configuration.push_back(v.asInt());
  for (const auto& v : j.at("tiles").asArray())
    m.tileSizes.push_back(v.asInt());
  m.threads = static_cast<int>(j.at("threads").asInt());
  m.timeSeconds = j.at("time_s").asNumber();
  m.resources = j.at("resources").asNumber();
  if (j.has("joules")) m.joules = j.at("joules").asNumber();
  return m;
}

} // namespace

support::Json toJson(const TunedArtifact& artifact) {
  support::JsonArray versions;
  for (const auto& m : artifact.front) versions.push_back(metaToJson(m));
  support::JsonObject out{
      {"format", "motune-artifact-v1"},
      {"kernel", artifact.kernel},
      {"machine", artifact.machineName},
      {"problem_size", artifact.problemSize},
      {"evaluations", artifact.evaluations},
      {"hypervolume", artifact.hypervolume},
      {"untiled_serial_s", artifact.untiledSerialSeconds},
      {"versions", std::move(versions)},
  };
  if (artifact.session.has_value()) {
    const SessionProvenance& s = *artifact.session;
    out.emplace("session", support::JsonObject{
                               {"journal", s.journal},
                               {"checkpoints", s.checkpoints},
                               {"resumes", s.resumes},
                               {"recorded_evaluations", s.recordedEvaluations},
                           });
  }
  return out;
}

TunedArtifact artifactFromJson(const support::Json& json) {
  MOTUNE_CHECK_MSG(json.has("format") &&
                       json.at("format").asString() == "motune-artifact-v1",
                   "not a motune tuning artifact");
  TunedArtifact a;
  a.kernel = json.at("kernel").asString();
  a.machineName = json.at("machine").asString();
  a.problemSize = json.at("problem_size").asInt();
  a.evaluations = static_cast<std::uint64_t>(json.at("evaluations").asInt());
  a.hypervolume = json.at("hypervolume").asNumber();
  a.untiledSerialSeconds = json.at("untiled_serial_s").asNumber();
  for (const auto& v : json.at("versions").asArray())
    a.front.push_back(metaFromJson(v));
  if (json.has("session")) {
    const support::Json& s = json.at("session");
    SessionProvenance p;
    p.journal = s.at("journal").asString();
    p.checkpoints = static_cast<std::uint64_t>(s.at("checkpoints").asInt());
    p.resumes = static_cast<int>(s.at("resumes").asInt());
    p.recordedEvaluations =
        static_cast<std::uint64_t>(s.at("recorded_evaluations").asInt());
    a.session = std::move(p);
  }
  return a;
}

std::string serializeArtifact(const TunedArtifact& artifact) {
  return toJson(artifact).dump();
}

TunedArtifact deserializeArtifact(const std::string& text) {
  return artifactFromJson(support::Json::parse(text));
}

void saveArtifact(const TunedArtifact& artifact, const std::string& path) {
  std::ofstream out(path);
  MOTUNE_CHECK_MSG(out.good(), "cannot open for writing: " + path);
  out << serializeArtifact(artifact) << "\n";
  MOTUNE_CHECK_MSG(out.good(), "write failed: " + path);
}

TunedArtifact loadArtifact(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return deserializeArtifact(buffer.str());
}

} // namespace motune::autotune
