#include "autotune/autotuner.h"

#include "core/hypervolume.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"
#include "tuning/island.h"
#include "tuning/seed.h"
#include "tuning/surrogate.h"
#include "tuning/validation.h"

#include <algorithm>
#include <memory>
#include <set>

namespace motune::autotune {

namespace {

const char* algorithmName(Algorithm algorithm) {
  switch (algorithm) {
  case Algorithm::RSGDE3: return "rsgde3";
  case Algorithm::PlainGDE3: return "gde3";
  case Algorithm::NSGA2: return "nsga2";
  case Algorithm::Random: return "random";
  case Algorithm::BruteForce: return "brute-force";
  }
  return "unknown";
}

/// The algorithm-options blob in the session header: every knob that
/// changes the deterministic search trajectory (the seed is its own header
/// field). Resume compares this verbatim against the journal's copy.
/// `islandIndex` >= 0 stamps the island identity of a per-island session
/// (src/tuning/island.h) — worker and merge invocations rebuild the same
/// blob, which is what lets them resume each other's journals.
support::Json algorithmOptionsJson(const TunerOptions& options,
                                   int islandIndex = -1) {
  const opt::GDE3Options& g = options.gde3;
  support::JsonObject blob{
      {"population", g.population},
      {"cr", g.cr},
      {"f", g.f},
      {"max_generations", g.maxGenerations},
      {"no_improve_limit", g.noImproveLimit},
      {"improve_epsilon", g.improveEpsilon},
      {"immigrants_on_stagnation", g.immigrantsOnStagnation},
      {"reduction", options.algorithm == Algorithm::RSGDE3},
  };
  // Surrogate culling changes the search trajectory, so it (and the
  // warm-start corpus that shapes its early predictions) is part of the
  // search identity. At keep == 1 the trajectory is provably unchanged,
  // and omitting the fields keeps old journals resumable byte for byte.
  if (options.surrogateKeep < 1.0) {
    blob.emplace("surrogate_keep", options.surrogateKeep);
    support::JsonArray dirs;
    for (const std::string& d : options.warmStartDirs) dirs.emplace_back(d);
    blob.emplace("warm_start", std::move(dirs));
  }
  // Initial seeds redirect where the search starts, so they are part of
  // the identity too; omitted when empty for the same reason as above.
  if (!g.initialSeeds.empty()) {
    support::JsonArray seeds;
    for (const tuning::Config& c : g.initialSeeds) {
      support::JsonArray values;
      for (std::int64_t v : c) values.emplace_back(v);
      seeds.emplace_back(std::move(values));
    }
    blob.emplace("seeds", std::move(seeds));
  }
  if (options.islands > 1) {
    blob.emplace("island",
                 support::JsonObject{
                     {"islands", options.islands},
                     {"index", islandIndex},
                     {"migrate_every", options.migrateEvery},
                     {"migrants", options.islandMigrants},
                 });
  }
  return blob;
}

/// Builds (when enabled) the surrogate for one optimize call and pre-trains
/// it from any warm-start journals whose header passes the relaxed
/// warmStartCompatible fingerprint. Incompatible journals are skipped, not
/// fatal — a stale directory of unrelated sessions should not kill a run —
/// but a directory without a journal is an operator error.
std::unique_ptr<tuning::Surrogate>
makeSurrogate(const TunerOptions& options, tuning::ObjectiveFunction& fn,
              const std::string& problemTag) {
  const bool active = options.surrogateEnabled ||
                      options.surrogateKeep < 1.0 ||
                      !options.warmStartDirs.empty();
  if (!active) return nullptr;
  MOTUNE_CHECK_MSG(options.algorithm == Algorithm::RSGDE3 ||
                       options.algorithm == Algorithm::PlainGDE3,
                   "--surrogate-keep/--warm-start require --algo rsgde3 or "
                   "gde3 (only the GDE3-family engines take a surrogate)");
  auto surrogate = std::make_unique<tuning::Surrogate>(
      fn.space(), fn.numObjectives());

  session::SessionHeader current;
  current.problem = problemTag;
  current.objectives = fn.numObjectives();
  current.space = fn.space();
  auto& metrics = observe::MetricsRegistry::global();
  for (const std::string& dir : options.warmStartDirs) {
    MOTUNE_CHECK_MSG(session::sessionExists(dir),
                     "--warm-start directory has no session journal: " + dir);
    const session::ResumeState state = session::loadSession(dir);
    if (!session::warmStartCompatible(state.header, current)) {
      metrics.counter("tuning.surrogate.warmstart.skipped").add();
      continue;
    }
    for (const session::EvalRecord& e : state.evaluations)
      surrogate->observe(e.config, e.objectives);
    metrics.counter("tuning.surrogate.warmstart.evaluations")
        .add(state.evaluations.size());
    metrics.counter("tuning.surrogate.warmstart.journals").add();
  }
  surrogate->markPreloaded();
  return surrogate;
}

} // namespace

AutoTuner::AutoTuner(TunerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<runtime::ThreadPool>(
          options_.evaluationWorkers)) {}

opt::OptResult AutoTuner::optimize(tuning::ObjectiveFunction& fn) {
  return optimizeImpl(fn, "custom", nullptr);
}

opt::OptResult
AutoTuner::optimizeImpl(tuning::ObjectiveFunction& fn,
                        const std::string& problemTag,
                        std::optional<SessionProvenance>* provenance) {
  observe::Span span = observe::Tracer::global().span(
      "autotune.optimize",
      {{"algorithm", support::Json(algorithmName(options_.algorithm))}});

  // The evaluation path the search engine sees: objective function, then
  // (tests/CI only) the deterministic fault injector, then the fault
  // tolerance wrapper. The engine's own memoizing CountingEvaluator sits
  // on top, so retries and fallbacks happen per unique configuration.
  tuning::ObjectiveFunction* target = &fn;
  std::optional<tuning::FaultInjectingEvaluator> injector;
  if (std::optional<tuning::FaultSpec> spec = tuning::FaultSpec::fromEnv()) {
    injector.emplace(*target, std::move(*spec));
    target = &*injector;
  }
  std::optional<tuning::FaultTolerantEvaluator> tolerant;
  if (options_.fault.enabled) {
    tolerant.emplace(*target, options_.fault, options_.faultFallback);
    target = &*tolerant;
  }

  // Cancellation/progress hooks for hook-less (non-session) GDE3-family
  // runs.
  opt::RunHooks stopOnly;
  stopOnly.shouldStop = options_.stopRequested;
  stopOnly.onGeneration = options_.onProgress;
  const opt::RunHooks* stopHooks =
      options_.stopRequested || options_.onProgress ? &stopOnly : nullptr;

  // Surrogate pre-ranking: built per optimize call (it is trained on this
  // problem's evaluations) and handed to the engine by pointer, so it must
  // outlive the engine below.
  const std::unique_ptr<tuning::Surrogate> surrogate =
      makeSurrogate(options_, fn, problemTag);
  opt::GDE3Options gde3 = options_.gde3;
  if (surrogate) {
    gde3.surrogate = surrogate.get();
    gde3.surrogateKeep = options_.surrogateKeep;
  }

  if (options_.islands > 1 || options_.islandIndex >= 0) {
    MOTUNE_CHECK_MSG(options_.algorithm == Algorithm::RSGDE3 ||
                         options_.algorithm == Algorithm::PlainGDE3,
                     "--islands requires --algo rsgde3 or gde3 (only the "
                     "GDE3-family engines support the island model)");
    MOTUNE_CHECK_MSG(surrogate == nullptr,
                     "--islands is incompatible with --surrogate-keep/"
                     "--warm-start (the surrogate is not shared between "
                     "islands)");
    tuning::IslandOptions io;
    io.islands = options_.islands;
    io.migrateEvery = options_.migrateEvery;
    io.migrants = options_.islandMigrants;
    io.islandIndex = options_.islandIndex;
    io.directory = options_.session.directory;
    io.checkpointEvery = options_.session.checkpointEvery;
    io.resume = options_.session.resume;
    io.reduction = options_.algorithm == Algorithm::RSGDE3;
    io.gde3 = gde3;
    io.seeds = gde3.initialSeeds;
    io.stopRequested = options_.stopRequested;
    io.onProgress = options_.onProgress;
    io.makeHeader = [this, &fn, &problemTag](int island,
                                             std::uint64_t islandSeed) {
      session::SessionHeader h;
      h.problem = problemTag;
      h.algorithm = algorithmName(options_.algorithm);
      h.seed = islandSeed;
      h.objectives = fn.numObjectives();
      h.space = fn.space();
      h.algorithmOptions = algorithmOptionsJson(options_, island);
      return h;
    };
    tuning::IslandRun run = tuning::runIslands(*target, *pool_, io);
    if (provenance != nullptr && !io.directory.empty()) {
      SessionProvenance p;
      p.journal = run.journal;
      p.checkpoints = run.checkpoints;
      p.resumes = run.resumes;
      p.recordedEvaluations = run.recordedEvaluations;
      *provenance = std::move(p);
    }
    return run.merged;
  }

  const bool useSession = !options_.session.directory.empty();
  if (!useSession) {
    switch (options_.algorithm) {
    case Algorithm::RSGDE3: {
      opt::RSGDE3 engine(*target, *pool_, {gde3, true});
      return engine.run(stopHooks);
    }
    case Algorithm::PlainGDE3: {
      opt::RSGDE3 engine(*target, *pool_, {gde3, false});
      return engine.run(stopHooks);
    }
    case Algorithm::NSGA2: {
      opt::NSGA2 engine(*target, *pool_, options_.nsga2);
      return engine.run();
    }
    case Algorithm::Random: {
      opt::RandomSearch engine(*target, *pool_,
                               {options_.randomBudget, options_.gde3.seed, true});
      return engine.run();
    }
    case Algorithm::BruteForce: {
      MOTUNE_CHECK_MSG(options_.grid.has_value(),
                       "BruteForce requires a GridSpec");
      opt::GridSearch engine(*target, *pool_, *options_.grid);
      return engine.run();
    }
    }
    MOTUNE_CHECK_MSG(false, "unknown algorithm");
    return {};
  }

  // Sessions journal serialized engine state, which only the GDE3-family
  // engines expose.
  MOTUNE_CHECK_MSG(options_.algorithm == Algorithm::RSGDE3 ||
                       options_.algorithm == Algorithm::PlainGDE3,
                   "--checkpoint/--resume require --algo rsgde3 or gde3 "
                   "(only the GDE3-family engines are checkpointable)");
  const bool reduction = options_.algorithm == Algorithm::RSGDE3;

  session::SessionHeader header;
  header.problem = problemTag;
  header.algorithm = algorithmName(options_.algorithm);
  header.seed = options_.gde3.seed;
  header.objectives = fn.numObjectives();
  header.space = fn.space();
  header.algorithmOptions = algorithmOptionsJson(options_);

  opt::RSGDE3 engine(*target, *pool_, {gde3, reduction});

  std::optional<session::ResumeState> resumed;
  std::unique_ptr<session::SessionWriter> writer;
  if (options_.session.resume) {
    resumed = session::loadSession(options_.session.directory);
    MOTUNE_CHECK_MSG(!resumed->finished,
                     "session in " + options_.session.directory +
                         " already ran to completion; nothing to resume");
    session::checkCompatible(resumed->header, header);
    // Pre-seed the memo: replayed generations between the last checkpoint
    // and the kill re-request the same configurations deterministically
    // and hit these entries, keeping the evaluation count E exact.
    for (const session::EvalRecord& e : resumed->evaluations)
      engine.engine().evaluator().preload(e.config, e.objectives);
    writer = std::make_unique<session::SessionWriter>(
        options_.session.directory, *resumed);
  } else {
    writer = std::make_unique<session::SessionWriter>(
        options_.session.directory, header);
  }
  engine.engine().evaluator().setListener(
      [&writer](const tuning::Config& config,
                const tuning::Objectives& objectives) {
        writer->recordEvaluation(config, objectives);
      });

  opt::RunHooks hooks;
  hooks.checkpointEvery = options_.session.checkpointEvery;
  hooks.checkpoint = [&writer, &engine](const support::Json& state,
                                        int generation) {
    writer->recordCheckpoint(state, generation, engine.engine().evaluations());
  };
  hooks.shouldStop = options_.stopRequested;
  hooks.onGeneration = options_.onProgress;
  if (resumed.has_value() && resumed->checkpoint.has_value())
    hooks.resumeState = &*resumed->checkpoint;

  opt::OptResult result = engine.run(&hooks);
  // A cancelled run gets no finish record: the journal stays resumable in
  // case the cancellation is operator error, and the serve layer marks the
  // job cancelled through its own store.
  if (!options_.stopRequested || !options_.stopRequested())
    writer->recordFinish(result.evaluations, result.front.size(),
                         result.hvHistory.empty() ? 0.0
                                                  : result.hvHistory.back());

  if (provenance != nullptr) {
    SessionProvenance p;
    p.journal = writer->path();
    p.checkpoints =
        (resumed ? resumed->checkpoints : 0) + writer->checkpointsWritten();
    p.resumes = resumed ? resumed->resumes + 1 : 0;
    p.recordedEvaluations =
        (resumed ? resumed->evaluations.size() : 0) +
        writer->evaluationsRecorded();
    *provenance = std::move(p);
  }
  return result;
}

double scoreHypervolume(const std::vector<opt::Individual>& front,
                        double timeRef, double resourceRef) {
  MOTUNE_CHECK(timeRef > 0.0 && resourceRef > 0.0);
  const opt::HypervolumeMetric metric({timeRef, resourceRef});
  return metric.ofFront(front);
}

std::uint64_t threadSweepRefinement(tuning::KernelTuningProblem& problem,
                                    opt::OptResult& result) {
  observe::Span span =
      observe::Tracer::global().span("autotune.thread_sweep");
  const auto& space = problem.space();
  const std::size_t tileDims = problem.skeleton().tileDepth();
  const auto maxThreads = space.back().hi;

  // Distinct tile settings on the current front.
  std::set<tuning::Config> tiles;
  std::set<tuning::Config> evaluated;
  for (const auto& ind : result.front) {
    tiles.insert(tuning::Config(ind.config.begin(),
                                ind.config.begin() +
                                    static_cast<std::ptrdiff_t>(tileDims)));
  }
  for (const auto& ind : result.population) evaluated.insert(ind.config);

  std::uint64_t extra = 0;
  std::vector<opt::Individual> pool = result.front;
  for (const auto& t : tiles) {
    for (std::int64_t p = 1; p <= maxThreads; ++p) {
      tuning::Config config = t;
      config.push_back(p);
      if (!evaluated.insert(config).second) continue;
      opt::Individual ind;
      ind.genome.assign(config.begin(), config.end());
      ind.objectives = problem.evaluate(config);
      ind.config = std::move(config);
      pool.push_back(std::move(ind));
      ++extra;
    }
  }
  result.front = opt::paretoFront(pool);
  result.evaluations += extra;
  span.setAttr("tiles", support::Json(tiles.size()));
  span.setAttr("extra_evaluations", support::Json(extra));
  span.setAttr("front_size", support::Json(result.front.size()));
  observe::MetricsRegistry::global()
      .counter("tuning.sweep.evaluations")
      .add(extra);
  return extra;
}

TuningResult AutoTuner::tune(tuning::KernelTuningProblem& problem) {
  // The run-level span stitching the whole pipeline together: search,
  // thread-sweep refinement, scoring. Sub-spans (rsgde3.run,
  // gde3.generation, autotune.thread_sweep) nest beneath it.
  observe::Span span = observe::Tracer::global().span(
      "autotune.tune",
      {{"kernel", support::Json(problem.kernel().name)},
       {"machine", support::Json(problem.machine().name)},
       {"n", support::Json(problem.problemSize())},
       {"algorithm", support::Json(algorithmName(options_.algorithm))}});
  TuningResult out;
  // Session-header tag: every problem parameter that must match on resume.
  std::string problemTag = problem.kernel().name + "/" +
                           problem.machine().name + "/n" +
                           std::to_string(problem.problemSize());
  for (tuning::Objective obj : problem.objectives()) {
    switch (obj) {
    case tuning::Objective::Time: problemTag += "/time"; break;
    case tuning::Objective::Resources: problemTag += "/resources"; break;
    case tuning::Objective::Energy: problemTag += "/energy"; break;
    }
  }
  // Analytic seeding: derived from the performance model before the search
  // starts, stashed into the engine options so both the engine and the
  // session header (algorithmOptionsJson) see the same seed list.
  if (options_.seedAnalytic) {
    MOTUNE_CHECK_MSG(options_.algorithm == Algorithm::RSGDE3 ||
                         options_.algorithm == Algorithm::PlainGDE3,
                     "--seed-analytic requires --algo rsgde3 or gde3 (seeds "
                     "are injected into the GDE3 initial population)");
    options_.gde3.initialSeeds = tuning::analyticSeeds(problem);
    observe::MetricsRegistry::global()
        .counter("tuning.seed.analytic")
        .add(options_.gde3.initialSeeds.size());
  }
  out.raw = optimizeImpl(problem, problemTag, &out.session);
  // Worker-mode island invocations produce a provisional single-island
  // snapshot; the merge invocation refines and scores the real front.
  const bool islandWorker = options_.islandIndex >= 0;
  if (!islandWorker &&
      (options_.algorithm == Algorithm::RSGDE3 ||
       options_.algorithm == Algorithm::PlainGDE3 ||
       options_.algorithm == Algorithm::NSGA2))
    threadSweepRefinement(problem, out.raw);
  out.evaluations = out.raw.evaluations;

  // Normalization for V(S): the untiled serial region is the "worst
  // reasonable" baseline per objective (resource usage capped at twice the
  // serial cost — the efficiency >= 0.5 band; energy at twice the serial
  // energy). Fixed per (kernel, machine), so brute force, random search
  // and RS-GDE3 are scored on the same scale.
  const perf::Prediction baseline = problem.untiledSerialPrediction();
  out.timeRef = baseline.seconds;
  out.resourceRef = 2.0 * baseline.seconds;
  {
    tuning::Objectives worst;
    for (tuning::Objective obj : problem.objectives()) {
      switch (obj) {
      case tuning::Objective::Time: worst.push_back(out.timeRef); break;
      case tuning::Objective::Resources:
        worst.push_back(out.resourceRef);
        break;
      case tuning::Objective::Energy:
        worst.push_back(2.0 * baseline.joules);
        break;
      }
    }
    const opt::HypervolumeMetric metric(std::move(worst));
    out.hypervolume = metric.ofFront(out.raw.front);
  }

  // Version metadata is derived from the full cost breakdown, so it stays
  // complete whatever objective subset drove the search.
  const std::size_t tileDims = problem.skeleton().tileDepth();
  for (const opt::Individual& ind : out.raw.front) {
    const perf::Prediction pred = problem.predictFull(ind.config);
    mv::VersionMeta meta;
    meta.configuration = ind.config;
    meta.tileSizes.assign(ind.config.begin(),
                          ind.config.begin() + static_cast<std::ptrdiff_t>(tileDims));
    meta.threads = static_cast<int>(ind.config.back());
    meta.timeSeconds = pred.seconds;
    meta.resources = pred.resources;
    meta.joules = pred.joules;
    out.front.push_back(std::move(meta));
  }
  std::sort(out.front.begin(), out.front.end(),
            [](const mv::VersionMeta& a, const mv::VersionMeta& b) {
              return a.timeSeconds < b.timeSeconds;
            });

  // One event per front member so a trace alone can rebuild the Pareto
  // table (report's "Final Pareto front" section).
  observe::Tracer& tracer = observe::Tracer::global();
  if (tracer.enabled()) {
    for (const mv::VersionMeta& meta : out.front) {
      std::string tiles;
      for (std::int64_t t : meta.tileSizes)
        tiles += (tiles.empty() ? "" : "x") + std::to_string(t);
      tracer.event("autotune.front_version",
                   {{"tiles", support::Json(tiles)},
                    {"threads", support::Json(meta.threads)},
                    {"time_s", support::Json(meta.timeSeconds)},
                    {"resources", support::Json(meta.resources)},
                    {"joules", support::Json(meta.joules)}});
    }
  }

  if (options_.validateFront) {
    std::vector<tuning::Config> configs;
    for (const opt::Individual& ind : out.raw.front)
      configs.push_back(ind.config);
    const auto samples = tuning::validateAgainstCachesim(
        problem.kernel(), problem.machine(), configs,
        {options_.validateMax, 0});
    auto& metrics = observe::MetricsRegistry::global();
    for (const tuning::ValidationSample& s : samples) {
      std::string configStr;
      for (std::int64_t v : s.config)
        configStr += (configStr.empty() ? "" : "x") + std::to_string(v);
      metrics.histogram("tuning.validation.dram_ratio").observe(s.dramRatio);
      if (tracer.enabled())
        tracer.event(
            "eval.validate",
            {{"config", support::Json(configStr)},
             {"n", support::Json(s.n)},
             {"model_dram_mb", support::Json(s.modelDramBytes / 1e6)},
             {"sim_dram_mb", support::Json(s.simDramBytes / 1e6)},
             {"dram_ratio", support::Json(s.dramRatio)},
             {"model_seconds", support::Json(s.modelSeconds)},
             {"sim_seconds", support::Json(s.simSeconds)}});
    }
    metrics.counter("tuning.validation.samples").add(samples.size());
  }

  span.setAttr("evaluations", support::Json(out.evaluations));
  span.setAttr("front_size", support::Json(out.front.size()));
  span.setAttr("hypervolume", support::Json(out.hypervolume));
  span.setAttr("generations", support::Json(out.raw.generations));
  auto& metrics = observe::MetricsRegistry::global();
  metrics.gauge("autotune.hypervolume").set(out.hypervolume);
  metrics.gauge("autotune.evaluations")
      .set(static_cast<double>(out.evaluations));
  metrics.gauge("autotune.front_size")
      .set(static_cast<double>(out.front.size()));
  return out;
}

} // namespace motune::autotune
