#include "autotune/autotuner.h"

#include "core/hypervolume.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"
#include "tuning/validation.h"

#include <algorithm>
#include <set>

namespace motune::autotune {

namespace {

const char* algorithmName(Algorithm algorithm) {
  switch (algorithm) {
  case Algorithm::RSGDE3: return "rsgde3";
  case Algorithm::PlainGDE3: return "gde3";
  case Algorithm::NSGA2: return "nsga2";
  case Algorithm::Random: return "random";
  case Algorithm::BruteForce: return "brute-force";
  }
  return "unknown";
}

} // namespace

AutoTuner::AutoTuner(TunerOptions options)
    : options_(std::move(options)),
      pool_(std::make_unique<runtime::ThreadPool>(
          options_.evaluationWorkers)) {}

opt::OptResult AutoTuner::optimize(tuning::ObjectiveFunction& fn) {
  observe::Span span = observe::Tracer::global().span(
      "autotune.optimize",
      {{"algorithm", support::Json(algorithmName(options_.algorithm))}});
  switch (options_.algorithm) {
  case Algorithm::RSGDE3: {
    opt::RSGDE3 engine(fn, *pool_, {options_.gde3, true});
    return engine.run();
  }
  case Algorithm::PlainGDE3: {
    opt::RSGDE3 engine(fn, *pool_, {options_.gde3, false});
    return engine.run();
  }
  case Algorithm::NSGA2: {
    opt::NSGA2 engine(fn, *pool_, options_.nsga2);
    return engine.run();
  }
  case Algorithm::Random: {
    opt::RandomSearch engine(fn, *pool_, {options_.randomBudget, options_.gde3.seed, true});
    return engine.run();
  }
  case Algorithm::BruteForce: {
    MOTUNE_CHECK_MSG(options_.grid.has_value(),
                     "BruteForce requires a GridSpec");
    opt::GridSearch engine(fn, *pool_, *options_.grid);
    return engine.run();
  }
  }
  MOTUNE_CHECK_MSG(false, "unknown algorithm");
  return {};
}

double scoreHypervolume(const std::vector<opt::Individual>& front,
                        double timeRef, double resourceRef) {
  MOTUNE_CHECK(timeRef > 0.0 && resourceRef > 0.0);
  const opt::HypervolumeMetric metric({timeRef, resourceRef});
  return metric.ofFront(front);
}

std::uint64_t threadSweepRefinement(tuning::KernelTuningProblem& problem,
                                    opt::OptResult& result) {
  observe::Span span =
      observe::Tracer::global().span("autotune.thread_sweep");
  const auto& space = problem.space();
  const std::size_t tileDims = problem.skeleton().tileDepth();
  const auto maxThreads = space.back().hi;

  // Distinct tile settings on the current front.
  std::set<tuning::Config> tiles;
  std::set<tuning::Config> evaluated;
  for (const auto& ind : result.front) {
    tiles.insert(tuning::Config(ind.config.begin(),
                                ind.config.begin() +
                                    static_cast<std::ptrdiff_t>(tileDims)));
  }
  for (const auto& ind : result.population) evaluated.insert(ind.config);

  std::uint64_t extra = 0;
  std::vector<opt::Individual> pool = result.front;
  for (const auto& t : tiles) {
    for (std::int64_t p = 1; p <= maxThreads; ++p) {
      tuning::Config config = t;
      config.push_back(p);
      if (!evaluated.insert(config).second) continue;
      opt::Individual ind;
      ind.genome.assign(config.begin(), config.end());
      ind.objectives = problem.evaluate(config);
      ind.config = std::move(config);
      pool.push_back(std::move(ind));
      ++extra;
    }
  }
  result.front = opt::paretoFront(pool);
  result.evaluations += extra;
  span.setAttr("tiles", support::Json(tiles.size()));
  span.setAttr("extra_evaluations", support::Json(extra));
  span.setAttr("front_size", support::Json(result.front.size()));
  observe::MetricsRegistry::global()
      .counter("tuning.sweep.evaluations")
      .add(extra);
  return extra;
}

TuningResult AutoTuner::tune(tuning::KernelTuningProblem& problem) {
  // The run-level span stitching the whole pipeline together: search,
  // thread-sweep refinement, scoring. Sub-spans (rsgde3.run,
  // gde3.generation, autotune.thread_sweep) nest beneath it.
  observe::Span span = observe::Tracer::global().span(
      "autotune.tune",
      {{"kernel", support::Json(problem.kernel().name)},
       {"machine", support::Json(problem.machine().name)},
       {"n", support::Json(problem.problemSize())},
       {"algorithm", support::Json(algorithmName(options_.algorithm))}});
  TuningResult out;
  out.raw = optimize(problem);
  if (options_.algorithm == Algorithm::RSGDE3 ||
      options_.algorithm == Algorithm::PlainGDE3 ||
      options_.algorithm == Algorithm::NSGA2)
    threadSweepRefinement(problem, out.raw);
  out.evaluations = out.raw.evaluations;

  // Normalization for V(S): the untiled serial region is the "worst
  // reasonable" baseline per objective (resource usage capped at twice the
  // serial cost — the efficiency >= 0.5 band; energy at twice the serial
  // energy). Fixed per (kernel, machine), so brute force, random search
  // and RS-GDE3 are scored on the same scale.
  const perf::Prediction baseline = problem.untiledSerialPrediction();
  out.timeRef = baseline.seconds;
  out.resourceRef = 2.0 * baseline.seconds;
  {
    tuning::Objectives worst;
    for (tuning::Objective obj : problem.objectives()) {
      switch (obj) {
      case tuning::Objective::Time: worst.push_back(out.timeRef); break;
      case tuning::Objective::Resources:
        worst.push_back(out.resourceRef);
        break;
      case tuning::Objective::Energy:
        worst.push_back(2.0 * baseline.joules);
        break;
      }
    }
    const opt::HypervolumeMetric metric(std::move(worst));
    out.hypervolume = metric.ofFront(out.raw.front);
  }

  // Version metadata is derived from the full cost breakdown, so it stays
  // complete whatever objective subset drove the search.
  const std::size_t tileDims = problem.skeleton().tileDepth();
  for (const opt::Individual& ind : out.raw.front) {
    const perf::Prediction pred = problem.predictFull(ind.config);
    mv::VersionMeta meta;
    meta.configuration = ind.config;
    meta.tileSizes.assign(ind.config.begin(),
                          ind.config.begin() + static_cast<std::ptrdiff_t>(tileDims));
    meta.threads = static_cast<int>(ind.config.back());
    meta.timeSeconds = pred.seconds;
    meta.resources = pred.resources;
    meta.joules = pred.joules;
    out.front.push_back(std::move(meta));
  }
  std::sort(out.front.begin(), out.front.end(),
            [](const mv::VersionMeta& a, const mv::VersionMeta& b) {
              return a.timeSeconds < b.timeSeconds;
            });

  // One event per front member so a trace alone can rebuild the Pareto
  // table (report's "Final Pareto front" section).
  observe::Tracer& tracer = observe::Tracer::global();
  if (tracer.enabled()) {
    for (const mv::VersionMeta& meta : out.front) {
      std::string tiles;
      for (std::int64_t t : meta.tileSizes)
        tiles += (tiles.empty() ? "" : "x") + std::to_string(t);
      tracer.event("autotune.front_version",
                   {{"tiles", support::Json(tiles)},
                    {"threads", support::Json(meta.threads)},
                    {"time_s", support::Json(meta.timeSeconds)},
                    {"resources", support::Json(meta.resources)},
                    {"joules", support::Json(meta.joules)}});
    }
  }

  if (options_.validateFront) {
    std::vector<tuning::Config> configs;
    for (const opt::Individual& ind : out.raw.front)
      configs.push_back(ind.config);
    const auto samples = tuning::validateAgainstCachesim(
        problem.kernel(), problem.machine(), configs,
        {options_.validateMax, 0});
    auto& metrics = observe::MetricsRegistry::global();
    for (const tuning::ValidationSample& s : samples) {
      std::string configStr;
      for (std::int64_t v : s.config)
        configStr += (configStr.empty() ? "" : "x") + std::to_string(v);
      metrics.histogram("tuning.validation.dram_ratio").observe(s.dramRatio);
      if (tracer.enabled())
        tracer.event(
            "eval.validate",
            {{"config", support::Json(configStr)},
             {"n", support::Json(s.n)},
             {"model_dram_mb", support::Json(s.modelDramBytes / 1e6)},
             {"sim_dram_mb", support::Json(s.simDramBytes / 1e6)},
             {"dram_ratio", support::Json(s.dramRatio)},
             {"model_seconds", support::Json(s.modelSeconds)},
             {"sim_seconds", support::Json(s.simSeconds)}});
    }
    metrics.counter("tuning.validation.samples").add(samples.size());
  }

  span.setAttr("evaluations", support::Json(out.evaluations));
  span.setAttr("front_size", support::Json(out.front.size()));
  span.setAttr("hypervolume", support::Json(out.hypervolume));
  span.setAttr("generations", support::Json(out.raw.generations));
  auto& metrics = observe::MetricsRegistry::global();
  metrics.gauge("autotune.hypervolume").set(out.hypervolume);
  metrics.gauge("autotune.evaluations")
      .set(static_cast<double>(out.evaluations));
  metrics.gauge("autotune.front_size")
      .set(static_cast<double>(out.front.size()));
  return out;
}

} // namespace motune::autotune
