// Public facade: the compiler driver of the paper's architecture (Fig. 3).
//
// Typical use (see examples/quickstart.cpp):
//
//   auto machine = machine::westmere();
//   tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), machine);
//   autotune::AutoTuner tuner;                       // RS-GDE3 by default
//   autotune::TuningResult result = tuner.tune(problem);
//   mv::VersionTable table = autotune::buildVersionTable(result, problem);
//   runtime::Region region(table);
//   runtime::WeightedSumPolicy policy(0.7, 0.3);
//   region.invoke(policy);
#pragma once

#include "core/gde3.h"
#include "core/grid_search.h"
#include "core/nsga2.h"
#include "core/random_search.h"
#include "core/rsgde3.h"
#include "multiversion/version_table.h"
#include "session/session.h"
#include "tuning/fault.h"
#include "tuning/kernel_problem.h"

#include <optional>

namespace motune::autotune {

enum class Algorithm {
  RSGDE3,     ///< the paper's optimizer (default)
  PlainGDE3,  ///< GDE3 without rough-set reduction (ablation)
  NSGA2,      ///< NSGA-II comparator (ablation)
  Random,     ///< random-search baseline (paper §V.B.3)
  BruteForce, ///< restricted-grid exhaustive search (paper §V.B.1)
};

struct TunerOptions {
  Algorithm algorithm = Algorithm::RSGDE3;
  opt::GDE3Options gde3;          ///< used by RSGDE3 / PlainGDE3
  opt::NSGA2Options nsga2;        ///< used by NSGA2
  std::uint64_t randomBudget = 1000;
  std::optional<opt::GridSpec> grid; ///< required for BruteForce
  unsigned evaluationWorkers = 0;    ///< 0 = hardware concurrency
  /// Replay the final front at the kernel's miniature size and compare the
  /// analytical prediction against the cache simulator; the comparisons are
  /// emitted as `eval.validate` trace events (`motune report` renders
  /// them). Off by default: the simulation is trace-granular.
  bool validateFront = false;
  std::size_t validateMax = 8; ///< cap on simulated configurations
  /// Durable sessions (`motune tune --checkpoint DIR [--resume]`): journal
  /// every unique evaluation plus periodic engine checkpoints so a killed
  /// run resumes bit-identically. Only RS-GDE3 / plain GDE3 are
  /// checkpointable; other algorithms reject a non-empty directory.
  session::SessionOptions session;
  /// Fault tolerance for the evaluation path (retry, timeout, quarantine);
  /// inert unless `fault.enabled`.
  tuning::FaultPolicy fault;
  /// Optional degradation target when the primary evaluator is exhausted
  /// or quarantined (typically the analytical model behind a native
  /// evaluator). Must outlive the tuner. Ignored unless `fault.enabled`.
  tuning::ObjectiveFunction* faultFallback = nullptr;
  /// Cooperative cancellation, polled between generations (GDE3-family
  /// engines only — the other strategies run to completion). When it
  /// returns true the search stops after the current generation and
  /// returns its partial snapshot; the serve daemon uses this to cancel
  /// running jobs without tearing down worker threads.
  std::function<bool()> stopRequested;
  /// Live per-generation telemetry (GDE3-family engines only), forwarded
  /// from opt::RunHooks::onGeneration. Runs on the search thread between
  /// generations — must be cheap and never block (the daemon uses it to
  /// publish progress frames to subscribers).
  std::function<void(const opt::GenerationProgress&)> onProgress;
  /// Surrogate-assisted evaluation (GDE3-family engines only). When the
  /// keep fraction is below 1, each generation's trial offspring are scored
  /// by an online ridge surrogate (src/tuning/surrogate.h) and only the top
  /// ceil(keep * population) receive a full cost-model evaluation. At
  /// exactly 1.0 with surrogateEnabled the surrogate observes and scores
  /// but culls nothing — results are byte-identical to a surrogate-free
  /// run. Enabled implicitly by a keep < 1 or a non-empty warmStartDirs.
  bool surrogateEnabled = false;
  double surrogateKeep = 1.0;
  /// Session directories whose journaled eval records pre-train the
  /// surrogate before the search starts (cross-session warm start).
  /// Each directory must hold a journal; incompatible journals (different
  /// problem/space/objectives — see session::warmStartCompatible) are
  /// skipped and counted in tuning.surrogate.warmstart.skipped.
  std::vector<std::string> warmStartDirs;
  /// Analytic seeding (`motune tune --seed-analytic`, src/tuning/seed.h):
  /// tune() derives cache-capacity-constrained starting configurations
  /// from the performance model and injects them into the initial GDE3
  /// population (GDE3 family only; optimize() has no kernel model and
  /// ignores the flag). Deterministic — the seeds become part of the
  /// session header, so resumes validate them.
  bool seedAnalytic = false;
  /// Island-model distributed search (`motune tune --islands N`,
  /// src/tuning/island.h; GDE3 family only, mutually exclusive with
  /// surrogate culling). islands > 1 runs that many independent searches
  /// (in-process threads, or one worker process per island via
  /// islandIndex) exchanging migrants on a deterministic ring; the result
  /// is the merged Pareto front.
  int islands = 1;
  int migrateEvery = 5;          ///< generations between migration rounds
  std::size_t islandMigrants = 3; ///< emigrants per island per round
  /// Worker-process mode: run only this island (>= 0) against the shared
  /// session directory; a later `--islands N --resume` invocation merges
  /// the finished islands. Requires a session directory.
  int islandIndex = -1;
};

/// Where a tuning result came from when it ran under a session — recorded
/// in the artifact so a deployment can trace a front back to its journal.
struct SessionProvenance {
  std::string journal;               ///< path of the session journal
  std::uint64_t checkpoints = 0;     ///< checkpoint records, all runs
  int resumes = 0;                   ///< times the session was resumed
  std::uint64_t recordedEvaluations = 0; ///< journaled unique evaluations
};

/// Tuning outcome: the Pareto set with metadata plus the comparison metrics
/// of Table VI (|S|, E, V(S)).
struct TuningResult {
  opt::OptResult raw;
  std::vector<mv::VersionMeta> front; ///< sorted by predicted time
  std::uint64_t evaluations = 0;      ///< E
  double hypervolume = 0.0;           ///< V(S), normalized (see below)
  double timeRef = 0.0;               ///< normalization: untiled serial time
  double resourceRef = 0.0;           ///< normalization: 2x untiled serial
  std::optional<SessionProvenance> session; ///< set when a session ran
};

class AutoTuner {
public:
  explicit AutoTuner(TunerOptions options = {});

  /// Runs the configured search strategy on `problem` and packages the
  /// Pareto set for the multi-versioning backend.
  TuningResult tune(tuning::KernelTuningProblem& problem);

  /// Same, for an arbitrary objective function (no version metadata
  /// enrichment beyond the raw configs).
  opt::OptResult optimize(tuning::ObjectiveFunction& fn);

  const TunerOptions& options() const { return options_; }

private:
  /// Search dispatch with optional session journaling and fault wrapping.
  /// `problemTag` identifies the search in the session header; `provenance`
  /// (may be null) receives the session summary when one ran.
  opt::OptResult optimizeImpl(tuning::ObjectiveFunction& fn,
                              const std::string& problemTag,
                              std::optional<SessionProvenance>* provenance);

  TunerOptions options_;
  std::unique_ptr<runtime::ThreadPool> pool_;
};

/// Normalized V(S) for an arbitrary front under the same reference scheme
/// AutoTuner uses — lets benches score brute-force/random fronts
/// identically (comparability across optimizers, paper §V.B.3).
double scoreHypervolume(const std::vector<opt::Individual>& front,
                        double timeRef, double resourceRef);

/// Parallelism-aware refinement (an extension beyond the paper's search):
/// every distinct tile setting on the front is re-evaluated at every thread
/// count, and the front is rebuilt. On the Pareto front of (time,
/// threads x time) each useful thread count contributes one point (paper
/// §V.B.2), so good tile settings discovered at one count usually extend
/// the front at many others. The extra evaluations are added to
/// `result.evaluations`, keeping equal-budget comparisons fair. Returns the
/// number of evaluations performed.
std::uint64_t threadSweepRefinement(tuning::KernelTuningProblem& problem,
                                    opt::OptResult& result);

} // namespace motune::autotune
