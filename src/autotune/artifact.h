// Tuning artifacts: persisted results of the static optimizer.
//
// The paper's workflow compiles the Pareto set into a multi-versioned
// executable once; this module provides the same decoupling for the
// library: `tune once -> save artifact -> load at program start -> build
// the runtime version table`, without re-running the (potentially long)
// search. The format is self-describing JSON (see support/json.h); the
// motune CLI (tools/motune_cli.cpp) reads and writes it.
#pragma once

#include "autotune/autotuner.h"
#include "multiversion/version_table.h"
#include "support/json.h"

#include <string>
#include <vector>

namespace motune::autotune {

/// Everything needed to reconstruct a multi-version table later — plus the
/// provenance a deployment wants on record (machine, problem size, search
/// effort, achieved quality).
struct TunedArtifact {
  std::string kernel;      ///< built-in kernel name ("mm", ...)
  std::string machineName; ///< the machine model the tuning targeted
  std::int64_t problemSize = 0;
  std::uint64_t evaluations = 0;
  double hypervolume = 0.0;
  double untiledSerialSeconds = 0.0;
  std::vector<mv::VersionMeta> front; ///< time-sorted Pareto set
  /// Session provenance when the search ran under `--checkpoint`: which
  /// journal produced this front, how often it checkpointed and how many
  /// times it was resumed. Serialized as the optional "session" object of
  /// the artifact format (readers ignore unknown fields, so pre-session
  /// artifacts load unchanged — see docs/architecture.md).
  std::optional<SessionProvenance> session;
};

/// Packages a tuning result (provenance from `problem`).
TunedArtifact makeArtifact(const TuningResult& result,
                           const tuning::KernelTuningProblem& problem);

/// JSON round-trip.
support::Json toJson(const TunedArtifact& artifact);
TunedArtifact artifactFromJson(const support::Json& json);

/// Convenience text round-trip (toJson(...).dump() / parse + fromJson).
std::string serializeArtifact(const TunedArtifact& artifact);
TunedArtifact deserializeArtifact(const std::string& text);

/// File I/O; throws support::CheckError on missing/invalid files.
void saveArtifact(const TunedArtifact& artifact, const std::string& path);
TunedArtifact loadArtifact(const std::string& path);

} // namespace motune::autotune
