// Multi-versioning backend (paper Fig. 3 label 5): turns a tuning result
// into executable artifacts —
//  * a runtime VersionTable whose entries run the real tiled kernels
//    through the thread pool with the Pareto-optimal parameters, and
//  * a generated multi-versioned C module (codegen path, paper Fig. 6).
#pragma once

#include "autotune/autotuner.h"
#include "kernels/native.h"
#include "multiversion/version_table.h"
#include "runtime/thread_pool.h"

#include <memory>
#include <string>

namespace motune::autotune {

/// Builds a runnable version table for the problem's kernel. `nativeN`
/// selects the problem size the versions execute natively (defaults to the
/// problem's size; tests pass something small). Tile sizes are clamped to
/// the native problem size. The table shares ownership of its input/output
/// buffers; all versions of one table compute on the same data.
mv::VersionTable buildVersionTable(const TuningResult& result,
                                   const tuning::KernelTuningProblem& problem,
                                   runtime::ThreadPool& pool,
                                   std::int64_t nativeN = 0);

/// Same, from raw version metadata (the path a loaded tuning artifact
/// takes, see artifact.h). `kernelName` must be one of the built-in
/// kernels.
mv::VersionTable buildVersionTableFromMetas(
    const std::string& kernelName, std::int64_t nativeN,
    const std::vector<mv::VersionMeta>& metas, runtime::ThreadPool& pool);

/// Emits the multi-versioned C module for the tuning result (one function
/// per Pareto point + metadata table), ready to be compiled by a system
/// compiler.
std::string emitMultiVersionedC(const TuningResult& result,
                                const tuning::KernelTuningProblem& problem);

} // namespace motune::autotune
