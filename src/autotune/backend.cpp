#include "autotune/backend.h"

#include "codegen/cemit.h"
#include "support/check.h"

#include <algorithm>

namespace motune::autotune {

namespace {

/// Shared data context for all versions of one region; versions differ only
/// in tiling/threads, so they can share buffers.
struct KernelData {
  std::string kernel;
  std::int64_t n;
  std::vector<double> a, b, c;
  std::unique_ptr<kernels::Bodies> bodies;

  KernelData(const std::string& kernelName, std::int64_t size)
      : kernel(kernelName), n(size) {
    const auto sz = static_cast<std::size_t>(n * n);
    if (kernel == "mm") {
      a.resize(sz);
      b.resize(sz);
      c.resize(sz);
      kernels::fillDeterministic(a, 1);
      kernels::fillDeterministic(b, 2);
    } else if (kernel == "dsyrk") {
      a.resize(sz);
      c.resize(sz);
      kernels::fillDeterministic(a, 1);
    } else if (kernel == "jacobi-2d") {
      a.resize(sz);
      b.resize(sz);
      kernels::fillDeterministic(a, 1);
    } else if (kernel == "3d-stencil") {
      const auto sz3 = static_cast<std::size_t>(n * n * n);
      a.resize(sz3);
      b.resize(sz3);
      kernels::fillDeterministic(a, 1);
    } else if (kernel == "n-body") {
      bodies = std::make_unique<kernels::Bodies>(static_cast<std::size_t>(n));
      kernels::fillDeterministic(bodies->x, 1);
      kernels::fillDeterministic(bodies->y, 2);
      kernels::fillDeterministic(bodies->z, 3);
    } else {
      MOTUNE_CHECK_MSG(false, "unknown kernel: " + kernel);
    }
  }

  void run(const std::vector<std::int64_t>& tiles, int threads,
           runtime::ThreadPool& pool) {
    auto t = [&](std::size_t i) {
      return std::min<std::int64_t>(std::max<std::int64_t>(tiles[i], 1), n);
    };
    if (kernel == "mm") {
      std::fill(c.begin(), c.end(), 0.0);
      kernels::mmTiled(a.data(), b.data(), c.data(), n, {t(0), t(1), t(2)},
                       threads, pool);
    } else if (kernel == "dsyrk") {
      std::fill(c.begin(), c.end(), 0.0);
      kernels::dsyrkTiled(a.data(), c.data(), n, {t(0), t(1), t(2)}, threads,
                          pool);
    } else if (kernel == "jacobi-2d") {
      kernels::jacobi2dTiled(a.data(), b.data(), n, {t(0), t(1)}, threads,
                             pool);
    } else if (kernel == "3d-stencil") {
      kernels::stencil3dTiled(a.data(), b.data(), n, {t(0), t(1), t(2)},
                              threads, pool);
    } else { // n-body
      std::fill(bodies->fx.begin(), bodies->fx.end(), 0.0);
      std::fill(bodies->fy.begin(), bodies->fy.end(), 0.0);
      std::fill(bodies->fz.begin(), bodies->fz.end(), 0.0);
      kernels::nbodyTiled(*bodies, {t(0), t(1)}, threads, pool);
    }
  }
};

} // namespace

mv::VersionTable buildVersionTableFromMetas(
    const std::string& kernelName, std::int64_t nativeN,
    const std::vector<mv::VersionMeta>& metas, runtime::ThreadPool& pool) {
  MOTUNE_CHECK_MSG(!metas.empty(), "no versions to build a table from");
  auto data = std::make_shared<KernelData>(kernelName, nativeN);

  mv::VersionTable table(kernelName);
  for (const mv::VersionMeta& meta : metas) {
    mv::CodeVersion version;
    version.meta = meta;
    version.run = [data, tiles = meta.tileSizes, &pool](int threads) {
      data->run(tiles, threads, pool);
    };
    table.add(std::move(version));
  }
  return table;
}

mv::VersionTable buildVersionTable(const TuningResult& result,
                                   const tuning::KernelTuningProblem& problem,
                                   runtime::ThreadPool& pool,
                                   std::int64_t nativeN) {
  const std::int64_t n = nativeN > 0 ? nativeN : problem.problemSize();
  return buildVersionTableFromMetas(problem.kernel().name, n, result.front,
                                    pool);
}

std::string emitMultiVersionedC(const TuningResult& result,
                                const tuning::KernelTuningProblem& problem) {
  MOTUNE_CHECK(!result.front.empty());
  std::vector<codegen::VersionDescriptor> descriptors;
  descriptors.reserve(result.front.size());
  for (const mv::VersionMeta& meta : result.front) {
    codegen::VersionDescriptor d;
    d.program = problem.instantiate(meta.configuration);
    d.tileSizes = meta.tileSizes;
    d.threads = meta.threads;
    d.estTimeSeconds = meta.timeSeconds;
    d.estResources = meta.resources;
    descriptors.push_back(std::move(d));
  }
  std::string regionName = problem.kernel().name;
  std::replace(regionName.begin(), regionName.end(), '-', '_');
  return codegen::emitMultiVersionModule(regionName, descriptors);
}

} // namespace motune::autotune
