#include "multiversion/observed.h"

namespace motune::mv {

ObservedCost::ObservedCost(std::size_t capacity) {
  MOTUNE_CHECK_MSG(capacity > 0, "ObservedCost window capacity must be positive");
  ring_.assign(capacity, 0.0);
}

void ObservedCost::push(double cost) {
  if (count_ == ring_.size()) {
    sum_ -= ring_[head_];
  } else {
    ++count_;
  }
  ring_[head_] = cost;
  sum_ += cost;
  head_ = (head_ + 1) % ring_.size();
  ++pushes_;
  // Re-sum the ring exactly once per wrap: the incremental add/subtract
  // above drifts by one ulp-scale error per eviction, and selection
  // thresholds (hysteresis margins of a few percent) must not wander
  // over a long run.
  if (head_ == 0 && count_ == ring_.size()) {
    double exact = 0.0;
    for (double v : ring_) exact += v;
    sum_ = exact;
  }
}

double ObservedCost::mean() const {
  MOTUNE_CHECK_MSG(count_ > 0, "ObservedCost::mean on empty window");
  return sum_ / static_cast<double>(count_);
}

double ObservedCost::last() const {
  MOTUNE_CHECK_MSG(count_ > 0, "ObservedCost::last on empty window");
  std::size_t idx = (head_ + ring_.size() - 1) % ring_.size();
  return ring_[idx];
}

double ObservedCost::min() const {
  MOTUNE_CHECK_MSG(count_ > 0, "ObservedCost::min on empty window");
  double best = ring_[(head_ + ring_.size() - 1) % ring_.size()];
  for (std::size_t i = 0; i < count_; ++i) {
    std::size_t idx = (head_ + ring_.size() - 1 - i) % ring_.size();
    if (ring_[idx] < best) best = ring_[idx];
  }
  return best;
}

void ObservedCost::clear() {
  head_ = 0;
  count_ = 0;
  sum_ = 0.0;
  for (double& v : ring_) v = 0.0;
}

}  // namespace motune::mv
