#include "multiversion/version_table.h"

#include "support/check.h"

#include <algorithm>
#include <limits>

namespace motune::mv {

void VersionTable::add(CodeVersion version) {
  MOTUNE_CHECK_MSG(version.meta.timeSeconds > 0.0,
                   "version must carry a positive predicted time");
  auto pos = std::lower_bound(
      versions_.begin(), versions_.end(), version.meta.timeSeconds,
      [](const CodeVersion& v, double t) { return v.meta.timeSeconds < t; });
  versions_.insert(pos, std::move(version));
}

const CodeVersion& VersionTable::operator[](std::size_t i) const {
  MOTUNE_CHECK(i < versions_.size());
  return versions_[i];
}

std::size_t VersionTable::fastest() const {
  MOTUNE_CHECK(!versions_.empty());
  return 0;
}

std::size_t VersionTable::mostEfficient() const {
  MOTUNE_CHECK(!versions_.empty());
  std::size_t best = 0;
  for (std::size_t i = 1; i < versions_.size(); ++i)
    if (versions_[i].meta.resources < versions_[best].meta.resources) best = i;
  return best;
}

std::pair<double, double> VersionTable::timeRange() const {
  MOTUNE_CHECK(!versions_.empty());
  return {versions_.front().meta.timeSeconds,
          versions_.back().meta.timeSeconds};
}

std::pair<double, double> VersionTable::resourceRange() const {
  MOTUNE_CHECK(!versions_.empty());
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& v : versions_) {
    lo = std::min(lo, v.meta.resources);
    hi = std::max(hi, v.meta.resources);
  }
  return {lo, hi};
}

} // namespace motune::mv
