// Multi-versioned code regions (paper Fig. 6).
//
// The backend turns each Pareto-optimal configuration into a specialized
// code version; the versions of one region are aggregated in a table
// "enriched with meta-information comprising specific properties of the
// individual versions", which the runtime decision process consults when
// selecting the version to execute.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace motune::mv {

/// Trade-off metadata attached to one code version.
struct VersionMeta {
  std::vector<std::int64_t> configuration; ///< full tuning vector
  std::vector<std::int64_t> tileSizes;     ///< tile-size part of the config
  int threads = 1;                         ///< thread count tuned for
  double timeSeconds = 0.0;                ///< objective 1 (minimize)
  double resources = 0.0;                  ///< objective 2: threads x time
  double joules = 0.0;                     ///< optional energy objective

  /// Parallel efficiency relative to a serial reference time.
  double efficiency(double serialSeconds) const {
    return resources > 0.0 ? serialSeconds / resources : 0.0;
  }
};

/// One specialized version: metadata plus the callable realizing it.
/// The callable receives the thread count the version was tuned for.
struct CodeVersion {
  VersionMeta meta;
  std::function<void(int threads)> run;
};

/// The per-region table of Pareto-optimal versions (sorted by predicted
/// execution time, fastest first — i.e. from "all cores" toward "serial").
class VersionTable {
public:
  explicit VersionTable(std::string regionName = "region")
      : region_(std::move(regionName)) {}

  void add(CodeVersion version);

  std::size_t size() const { return versions_.size(); }
  bool empty() const { return versions_.empty(); }
  const CodeVersion& operator[](std::size_t i) const;
  const std::string& regionName() const { return region_; }

  /// Index of the version with minimal predicted time (0 by construction,
  /// provided for readability at call sites).
  std::size_t fastest() const;

  /// Index of the version with minimal resource usage.
  std::size_t mostEfficient() const;

  /// Extremes of each objective across the table (used by the weighted-sum
  /// policy to normalize before combining).
  std::pair<double, double> timeRange() const;
  std::pair<double, double> resourceRange() const;

private:
  std::string region_;
  std::vector<CodeVersion> versions_;
};

} // namespace motune::mv
