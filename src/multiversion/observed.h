#pragma once
// Per-version observed-cost statistics.
//
// The offline tuner stamps every code version with a *predicted* cost
// (VersionMeta::timeSeconds, measured on the tuning machine at the tuning
// problem size).  At run time the real cost drifts: inputs shrink, cores
// disappear under co-scheduled regions, caches cool.  ObservedCost keeps a
// fixed-capacity sliding window of measured costs per version so an online
// selection policy can rank versions by what they cost *now* rather than
// what they cost when tuned.
//
// Deterministic by construction: same push sequence, same state.  The
// windowed mean keeps a running sum that is recomputed exactly from the
// ring once per wrap, so a billion pushes cannot accumulate float drift
// into a selection decision.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/check.h"

namespace motune::mv {

/// Fixed-capacity sliding window over observed costs with O(1) push/mean.
class ObservedCost {
 public:
  explicit ObservedCost(std::size_t capacity = 32);

  /// Record one measured cost (seconds).  Evicts the oldest sample once
  /// the window is full.
  void push(double cost);

  /// Samples currently in the window: min(pushes(), capacity()).
  std::size_t count() const { return count_; }
  /// Lifetime samples recorded, including evicted ones.
  std::uint64_t pushes() const { return pushes_; }
  std::size_t capacity() const { return ring_.size(); }
  bool empty() const { return count_ == 0; }

  /// Windowed mean cost.  MOTUNE_CHECKs against an empty window.
  double mean() const;
  /// Most recent sample.  MOTUNE_CHECKs against an empty window.
  double last() const;
  /// Smallest sample in the window (O(window); not for hot paths).
  double min() const;

  /// Drop all samples (lifetime pushes() is kept).
  void clear();

 private:
  std::vector<double> ring_;
  std::size_t head_ = 0;   ///< next slot to write
  std::size_t count_ = 0;  ///< live samples
  std::uint64_t pushes_ = 0;
  double sum_ = 0.0;  ///< running sum of the live window
};

}  // namespace motune::mv
